//! The set-associative cache core.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::CacheStats;
use delorean_trace::{cast, mix64, LineAddr};

/// Sentinel tag for an empty way.
const EMPTY: u64 = u64::MAX;

/// Stable per-policy discriminant folded into state digests — decoupled
/// from the enum's memory layout so digests do not silently change if
/// the enum is reordered.
fn replacement_code(policy: ReplacementPolicy) -> u64 {
    match policy {
        ReplacementPolicy::Lru => 1,
        ReplacementPolicy::Fifo => 2,
        ReplacementPolicy::Random => 3,
        ReplacementPolicy::PLru => 4,
        ReplacementPolicy::Nmru => 5,
        ReplacementPolicy::Srrip => 6,
    }
}

/// Result of a (potentially filling) cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; `evicted` is the victim, if
    /// the chosen way held a valid line.
    Miss {
        /// Line evicted to make room, if any.
        evicted: Option<LineAddr>,
    },
}

impl AccessResult {
    /// `true` for [`AccessResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// A set-associative cache with pluggable replacement.
///
/// ```
/// use delorean_cache::{Cache, CacheConfig};
/// use delorean_trace::LineAddr;
///
/// let mut c = Cache::new(CacheConfig::new(4096, 2));
/// assert!(!c.access(LineAddr(1)).is_hit()); // cold
/// assert!(c.access(LineAddr(1)).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    set_mask: u64,
    /// Tag array, `sets × ways`, row-major; `EMPTY` marks invalid ways.
    tags: Vec<u64>,
    /// Per-way metadata: LRU/FIFO stamps (monotone ticks).
    stamps: Vec<u64>,
    /// Per-set tree-PLRU bits (also reused as MRU pointer for NMRU).
    set_bits: Vec<u32>,
    tick: u64,
    rng: u64,
    valid_lines: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        // lint:allow(no-unwrap): documented # Panics contract — construction fails fast on invalid geometry
        cfg.validate().expect("invalid cache geometry");
        let sets = cfg.sets();
        let n = cast::idx(sets * u64::from(cfg.ways));
        Cache {
            cfg,
            sets,
            set_mask: sets - 1,
            tags: vec![EMPTY; n],
            stamps: vec![0; n],
            set_bits: vec![0; cast::idx(sets)],
            tick: 0,
            rng: 0x5eed_c0de,
            valid_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Set index of a line. The set count is validated to be a power of
    /// two, so this is a single mask — no division on the hot path.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> u64 {
        line.0 & self.set_mask
    }

    #[inline]
    fn row(&self, set: u64) -> usize {
        cast::idx(set * u64::from(self.cfg.ways))
    }

    /// The one tag-probe loop every lookup path shares: scan the set's
    /// tags for `tag` and return the matching way.
    ///
    /// Dispatches on the associativity to a fixed-width branchless scan:
    /// all ways are compared into a hit mask with no data-dependent
    /// branch (an early-exit loop over effectively random tags
    /// mispredicts on almost every probe), and the dispatch itself is
    /// perfectly predicted — a given cache's associativity never changes.
    /// Power-of-two widths up to 16 cover every Table 1 geometry.
    #[inline]
    fn find_way(set_tags: &[u64], tag: u64) -> Option<usize> {
        match set_tags.len() {
            1 => (set_tags[0] == tag).then_some(0),
            2 => Self::find_way_fixed::<2>(set_tags, tag),
            4 => Self::find_way_fixed::<4>(set_tags, tag),
            8 => Self::find_way_fixed::<8>(set_tags, tag),
            16 => Self::find_way_fixed::<16>(set_tags, tag),
            _ => set_tags.iter().position(|&t| t == tag),
        }
    }

    /// Branchless fixed-associativity scan: compare every way, collect a
    /// hit mask, pick the lowest set bit (ways hold distinct tags, so at
    /// most one bit is ever set).
    #[inline]
    fn find_way_fixed<const N: usize>(set_tags: &[u64], tag: u64) -> Option<usize> {
        // lint:allow(no-unwrap): the const-N dispatch passes exactly N tags, so the array conversion is infallible
        let ways: &[u64; N] = set_tags.try_into().expect("dispatch guarantees width");
        let mut mask = 0u32;
        for (w, &t) in ways.iter().enumerate() {
            mask |= u32::from(t == tag) << w;
        }
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros() as usize)
        }
    }

    /// The miss-path scan: tag-match way and first invalid way in **one**
    /// pass over the set, so a filling miss does not re-scan the tags it
    /// just failed to match (historically: a match scan, then an EMPTY
    /// scan, then the victim scan).
    #[inline]
    fn scan_set(set_tags: &[u64], tag: u64) -> (Option<usize>, Option<usize>) {
        match set_tags.len() {
            2 => Self::scan_set_fixed::<2>(set_tags, tag),
            4 => Self::scan_set_fixed::<4>(set_tags, tag),
            8 => Self::scan_set_fixed::<8>(set_tags, tag),
            16 => Self::scan_set_fixed::<16>(set_tags, tag),
            _ => (
                set_tags.iter().position(|&t| t == tag),
                set_tags.iter().position(|&t| t == EMPTY),
            ),
        }
    }

    /// Branchless fused match + invalid scan at fixed associativity.
    #[inline]
    fn scan_set_fixed<const N: usize>(
        set_tags: &[u64],
        tag: u64,
    ) -> (Option<usize>, Option<usize>) {
        // lint:allow(no-unwrap): the const-N dispatch passes exactly N tags, so the array conversion is infallible
        let ways: &[u64; N] = set_tags.try_into().expect("dispatch guarantees width");
        let mut hit_mask = 0u32;
        let mut empty_mask = 0u32;
        for (w, &t) in ways.iter().enumerate() {
            hit_mask |= u32::from(t == tag) << w;
            empty_mask |= u32::from(t == EMPTY) << w;
        }
        let pick = |mask: u32| {
            if mask == 0 {
                None
            } else {
                Some(mask.trailing_zeros() as usize)
            }
        };
        (pick(hit_mask), pick(empty_mask))
    }

    /// The tags of the line's set.
    #[inline]
    fn set_tags(&self, line: LineAddr) -> &[u64] {
        let row = self.row(self.set_index(line));
        &self.tags[row..row + self.cfg.ways as usize]
    }

    /// Touch the *host* cache lines holding this line's set metadata
    /// (tags and replacement stamps) without observing them.
    ///
    /// A batched caller that knows the next few accesses can issue these
    /// touches ahead of the simulation loop, overlapping the host-memory
    /// latency of the tag arrays with the current access's work — a
    /// lookahead the one-at-a-time API structurally cannot have.
    #[inline]
    pub fn prefetch_set(&self, line: LineAddr) {
        let row = self.row(self.set_index(line));
        std::hint::black_box(self.tags[row]);
        std::hint::black_box(self.stamps[row]);
    }

    /// Non-mutating lookup.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        Self::find_way(self.set_tags(line), line.0).is_some()
    }

    /// Non-mutating combined probe: whether `line` is present, and
    /// whether every way of its set holds a valid line — one scan instead
    /// of a [`Cache::probe`] + [`Cache::set_is_full`] pair (the DSW
    /// analyst consults both for every lukewarm miss).
    #[inline]
    pub fn probe_set(&self, line: LineAddr) -> (bool, bool) {
        let tags = self.set_tags(line);
        let mut present = false;
        let mut used = 0usize;
        for &t in tags {
            present |= t == line.0;
            used += usize::from(t != EMPTY);
        }
        (present, used == tags.len())
    }

    /// Number of valid ways in the line's set, and the associativity.
    pub fn set_occupancy(&self, line: LineAddr) -> (u32, u32) {
        let used = self.set_tags(line).iter().filter(|&&t| t != EMPTY).count() as u32;
        (used, self.cfg.ways)
    }

    /// `true` if every way of the line's set holds a valid line.
    pub fn set_is_full(&self, line: LineAddr) -> bool {
        let (used, ways) = self.set_occupancy(line);
        used == ways
    }

    /// Fraction of the cache holding valid lines.
    pub fn warm_fraction(&self) -> f64 {
        self.valid_lines as f64 / (self.sets * self.cfg.ways as u64) as f64
    }

    /// Access `line`, updating replacement state and filling on a miss.
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> AccessResult {
        self.tick += 1;
        let set = self.set_index(line);
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        let (hit, empty) = Self::scan_set(&self.tags[row..row + ways], line.0);
        if let Some(w) = hit {
            self.stats.hits += 1;
            self.touch(set, row, w);
            return AccessResult::Hit;
        }
        self.stats.misses += 1;
        let evicted = self.fill_into(set, row, empty, line);
        AccessResult::Miss { evicted }
    }

    /// Access `line` *without* filling on a miss: hits update replacement
    /// state and statistics, misses only count. Used when the fill is
    /// deferred behind an MSHR.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let set = self.set_index(line);
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        if let Some(w) = Self::find_way(&self.tags[row..row + ways], line.0) {
            self.stats.hits += 1;
            self.touch(set, row, w);
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Insert `line` without recording an access (prefetch fill / warming
    /// transplant). Returns the evicted victim, if any. No-op if present.
    #[inline]
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.tick += 1;
        let set = self.set_index(line);
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        let (hit, empty) = Self::scan_set(&self.tags[row..row + ways], line.0);
        if hit.is_some() {
            return None;
        }
        self.fill_into(set, row, empty, line)
    }

    /// Remove `line` if present; returns whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let row = self.row(self.set_index(line));
        let ways = self.cfg.ways as usize;
        if let Some(w) = Self::find_way(&self.tags[row..row + ways], line.0) {
            self.tags[row + w] = EMPTY;
            self.valid_lines -= 1;
            return true;
        }
        false
    }

    /// Access statistics since construction or the last reset.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zero the statistics (state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Capture the full microarchitectural state of the cache (tags and
    /// replacement metadata) for checkpointed warming.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            tags: self.tags.clone(),
            stamps: self.stamps.clone(),
            set_bits: self.set_bits.clone(),
            tick: self.tick,
            valid_lines: self.valid_lines,
        }
    }

    /// Restore a previously captured state. Statistics are not part of the
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot geometry does not match this cache.
    pub fn restore(&mut self, snapshot: &CacheSnapshot) {
        assert_eq!(
            snapshot.tags.len(),
            self.tags.len(),
            "snapshot geometry mismatch"
        );
        self.tags.clone_from(&snapshot.tags);
        self.stamps.clone_from(&snapshot.stamps);
        self.set_bits.clone_from(&snapshot.set_bits);
        self.tick = snapshot.tick;
        self.valid_lines = snapshot.valid_lines;
    }

    /// Adopt another cache's state, reusing this cache's allocations
    /// (`clone_from` on the arrays instead of a fresh deep copy). The
    /// cheap restore path of the speculative warm lane: the reconciler
    /// repeatedly overwrites a scratch hierarchy with the carried state.
    ///
    /// # Panics
    ///
    /// Panics if the two caches have different geometry.
    pub fn copy_state_from(&mut self, other: &Cache) {
        assert_eq!(self.tags.len(), other.tags.len(), "cache geometry mismatch");
        self.cfg = other.cfg;
        self.tags.clone_from(&other.tags);
        self.stamps.clone_from(&other.stamps);
        self.set_bits.clone_from(&other.set_bits);
        self.tick = other.tick;
        self.rng = other.rng;
        self.valid_lines = other.valid_lines;
        self.stats = other.stats;
    }

    /// A [`mix64`] fold over the cache's **behaviorally live** state: the
    /// portion of the microarchitectural state that determines every
    /// future hit/miss/eviction, and nothing more. Two caches with equal
    /// digests behave identically on any subsequent access sequence,
    /// even when their raw [`CacheSnapshot`]s differ in dead bytes.
    ///
    /// What is live depends on the replacement policy:
    ///
    /// * **LRU / FIFO** — per set, the valid tags in *stamp-rank order*
    ///   (oldest → newest). Absolute stamp values are dead: every new
    ///   stamp exceeds all existing ones, so only the relative order can
    ///   ever influence a victim scan. Way positions are dead too: hits
    ///   scan all ways, the victim is chosen by minimum stamp (distinct
    ///   among valid ways — each write uses a fresh tick), and an empty
    ///   way's identity never outlives its fill. Rank-canonicalizing is
    ///   what lets a directed warm-up window, replayed from a cold cache,
    ///   reproduce the live state of the full warm chain exactly.
    /// * **SRRIP** — tags and RRPV stamps in way order (the victim scan
    ///   breaks RRPV ties by way index, so positions are live).
    /// * **PLRU** — tags in way order plus the tree bits (the bits
    ///   address ways, so positions are live; stamps and tick are dead).
    /// * **NMRU** — tags in way order, the MRU way pointer, and the RNG
    ///   and tick that seed victim selection.
    /// * **Random** — tags in way order plus RNG and tick.
    ///
    /// Statistics and `valid_lines` (derived from the tags) are never
    /// folded.
    pub fn state_digest(&self, seed: u64) -> u64 {
        let ways = self.cfg.ways as usize;
        let mut d = mix64(seed, self.sets ^ (u64::from(self.cfg.ways) << 32));
        d = mix64(d, replacement_code(self.cfg.replacement));
        // Scratch for the per-set rank sort (LRU/FIFO only); hoisted out
        // of the set loop so the digest allocates at most once.
        let mut by_rank: Vec<(u64, u64)> = Vec::with_capacity(ways);
        for set in 0..self.sets {
            let row = self.row(set);
            match self.cfg.replacement {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    by_rank.clear();
                    for w in 0..ways {
                        let tag = self.tags[row + w];
                        if tag != EMPTY {
                            by_rank.push((self.stamps[row + w], tag));
                        }
                    }
                    // Valid stamps are distinct within a cache (each
                    // write consumes a fresh tick), so this order is
                    // total and the sort is a pure rank canonicalization.
                    by_rank.sort_unstable();
                    d = mix64(d, by_rank.len() as u64);
                    for &(_, tag) in &by_rank {
                        d = mix64(d, tag);
                    }
                }
                ReplacementPolicy::Srrip => {
                    for w in 0..ways {
                        let tag = self.tags[row + w];
                        d = mix64(d, tag);
                        if tag != EMPTY {
                            d = mix64(d, self.stamps[row + w]);
                        }
                    }
                }
                ReplacementPolicy::PLru => {
                    for w in 0..ways {
                        d = mix64(d, self.tags[row + w]);
                    }
                    d = mix64(d, u64::from(self.set_bits[cast::idx(set)]));
                }
                ReplacementPolicy::Nmru => {
                    for w in 0..ways {
                        d = mix64(d, self.tags[row + w]);
                    }
                    d = mix64(d, u64::from(self.set_bits[cast::idx(set)]));
                }
                ReplacementPolicy::Random => {
                    for w in 0..ways {
                        d = mix64(d, self.tags[row + w]);
                    }
                }
            }
        }
        // RNG-driven policies consume (rng, tick) on every victim pick,
        // so both are live state there; everywhere else they are dead.
        if matches!(
            self.cfg.replacement,
            ReplacementPolicy::Random | ReplacementPolicy::Nmru
        ) {
            d = mix64(d, self.rng);
            d = mix64(d, self.tick);
        }
        d
    }

    /// Update replacement metadata after a hit on way `w`.
    #[inline]
    fn touch(&mut self, set: u64, row: usize, w: usize) {
        match self.cfg.replacement {
            ReplacementPolicy::Lru => self.stamps[row + w] = self.tick,
            ReplacementPolicy::Fifo => {} // insertion order only
            ReplacementPolicy::Random => {}
            ReplacementPolicy::PLru => self.plru_touch(set, w),
            ReplacementPolicy::Nmru => self.set_bits[cast::idx(set)] = cast::u32_exact(w as u64),
            ReplacementPolicy::Srrip => self.stamps[row + w] = 0, // near re-reference
        }
    }

    /// Choose a victim way in a full set.
    #[inline]
    fn victim(&mut self, set: u64, row: usize) -> usize {
        let ways = self.cfg.ways as usize;
        match self.cfg.replacement {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                // Branchless oldest-stamp scan: conditional moves instead
                // of a data-dependent branch per way (ties keep the first
                // minimum, matching the historical scan order).
                let stamps = &self.stamps[row..row + ways];
                let mut best = 0usize;
                let mut best_stamp = stamps[0];
                for (w, &s) in stamps.iter().enumerate().skip(1) {
                    let better = s < best_stamp;
                    best = if better { w } else { best };
                    best_stamp = if better { s } else { best_stamp };
                }
                best
            }
            ReplacementPolicy::Random => {
                self.rng = mix64(self.rng, self.tick);
                cast::idx(self.rng % ways as u64)
            }
            ReplacementPolicy::PLru => self.plru_victim(set),
            ReplacementPolicy::Nmru => {
                let mru = self.set_bits[cast::idx(set)] as usize % ways;
                if ways == 1 {
                    0
                } else {
                    self.rng = mix64(self.rng, self.tick);
                    let pick = cast::idx(self.rng % (ways as u64 - 1));
                    if pick >= mru {
                        pick + 1
                    } else {
                        pick
                    }
                }
            }
            ReplacementPolicy::Srrip => {
                // Find a distant-re-reference line (RRPV 3), aging the
                // whole set until one appears. Terminates: each round
                // raises the max RRPV by one and it is capped at 3.
                loop {
                    if let Some(w) = (0..ways).find(|&w| self.stamps[row + w] >= 3) {
                        return w;
                    }
                    for w in 0..ways {
                        self.stamps[row + w] += 1;
                    }
                }
            }
        }
    }

    /// Fill `line` into `set`: prefer the invalid way found by the fused
    /// miss scan, fall back to the policy victim in a full set.
    fn fill_into(
        &mut self,
        set: u64,
        row: usize,
        empty: Option<usize>,
        line: LineAddr,
    ) -> Option<LineAddr> {
        let w = empty.unwrap_or_else(|| self.victim(set, row));
        let old = self.tags[row + w];
        let evicted = if old == EMPTY {
            self.valid_lines += 1;
            None
        } else {
            self.stats.evictions += 1;
            Some(LineAddr(old))
        };
        self.tags[row + w] = line.0;
        self.stamps[row + w] = self.tick;
        match self.cfg.replacement {
            ReplacementPolicy::PLru => self.plru_touch(set, w),
            ReplacementPolicy::Nmru => self.set_bits[cast::idx(set)] = cast::u32_exact(w as u64),
            // SRRIP inserts with a "long" re-reference prediction: the
            // line must prove itself with a hit before it outlives scans.
            ReplacementPolicy::Srrip => self.stamps[row + w] = 2,
            _ => {}
        }
        evicted
    }

    /// Tree-PLRU: flip the path bits toward `w` so they point *away*.
    fn plru_touch(&mut self, set: u64, w: usize) {
        let ways = self.cfg.ways as usize;
        if ways == 1 {
            return;
        }
        let mut bits = self.set_bits[cast::idx(set)];
        let levels = ways.trailing_zeros();
        let mut node = 0usize; // index within the implicit tree, root = 0
        for level in (0..levels).rev() {
            let bit = (w >> level) & 1;
            // Store the direction NOT taken (points to the PLRU side).
            if bit == 1 {
                bits &= !(1 << node);
            } else {
                bits |= 1 << node;
            }
            node = 2 * node + 1 + bit;
        }
        self.set_bits[cast::idx(set)] = bits;
    }

    /// Tree-PLRU victim: follow the stored bits from the root.
    fn plru_victim(&self, set: u64) -> usize {
        let ways = self.cfg.ways as usize;
        if ways == 1 {
            return 0;
        }
        let bits = self.set_bits[cast::idx(set)];
        let levels = ways.trailing_zeros();
        let mut node = 0usize;
        let mut w = 0usize;
        for _ in 0..levels {
            let dir = ((bits >> node) & 1) as usize;
            w = (w << 1) | dir;
            node = 2 * node + 1 + dir;
        }
        w
    }
}

/// A serializable image of a cache's microarchitectural state (the
/// substance of checkpointed warming: Flex points / Live points store
/// exactly this per detailed region).
///
/// Snapshots compare bit-for-bit (`PartialEq`), which is what the
/// batched-vs-per-access equivalence oracle pins down: two hierarchies
/// that took the same accesses must snapshot identically.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheSnapshot {
    tags: Vec<u64>,
    stamps: Vec<u64>,
    set_bits: Vec<u32>,
    tick: u64,
    valid_lines: u64,
}

impl CacheSnapshot {
    /// Number of valid lines captured.
    pub fn valid_lines(&self) -> u64 {
        self.valid_lines
    }

    /// Storage footprint of a Live-points-style serialization: one 8-byte
    /// tag plus one byte of replacement metadata per *valid* line (invalid
    /// ways are not stored).
    pub fn storage_bytes(&self) -> u64 {
        self.valid_lines * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, policy: ReplacementPolicy) -> Cache {
        // 4 sets × `ways` lines of 64 B.
        Cache::new(CacheConfig {
            size_bytes: 64 * 4 * ways as u64,
            ways,
            line_bytes: 64,
            replacement: policy,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        assert!(!c.access(LineAddr(0)).is_hit());
        assert!(c.access(LineAddr(0)).is_hit());
        assert!(c.probe(LineAddr(0)));
        assert!(!c.probe(LineAddr(4)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(LineAddr(0));
        c.access(LineAddr(4));
        c.access(LineAddr(0)); // 0 is now MRU
        match c.access(LineAddr(8)) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(LineAddr(4))),
            _ => panic!("expected miss"),
        }
        assert!(c.probe(LineAddr(0)));
        assert!(!c.probe(LineAddr(4)));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = tiny(2, ReplacementPolicy::Fifo);
        c.access(LineAddr(0));
        c.access(LineAddr(4));
        c.access(LineAddr(0)); // touch does not refresh FIFO order
        match c.access(LineAddr(8)) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(LineAddr(0))),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn plru_follows_tree_bits() {
        let mut c = tiny(4, ReplacementPolicy::PLru);
        for l in [0u64, 4, 8, 12] {
            c.access(LineAddr(l)); // fill set 0: touch order w0..w3
        }
        // After the full fill sequence the tree points at w0; touching w0
        // flips the root to the right half, whose PLRU leaf is w2 (line 8).
        c.access(LineAddr(0));
        match c.access(LineAddr(16)) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(LineAddr(8))),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn plru_never_evicts_most_recently_used() {
        let mut c = tiny(8, ReplacementPolicy::PLru);
        // Pseudo-random accesses within one set (stride = set count = 4).
        let mut last = LineAddr(0);
        for i in 0..500u64 {
            let line = LineAddr(4 * (delorean_trace::mix64(1, i) % 32));
            let r = c.access(line);
            if let AccessResult::Miss { evicted: Some(e) } = r {
                assert_ne!(e, last, "iteration {i}: evicted the MRU line");
            }
            last = line;
        }
    }

    #[test]
    fn nmru_never_evicts_mru() {
        let mut c = tiny(4, ReplacementPolicy::Nmru);
        for l in [0u64, 4, 8, 12] {
            c.access(LineAddr(l));
        }
        for round in 0..50u64 {
            let mru = LineAddr(12 + 16 * round); // last filled / touched
            c.access(mru);
            match c.access(LineAddr(12 + 16 * (round + 1))) {
                AccessResult::Miss { evicted } => {
                    assert_ne!(evicted, Some(mru), "round {round}: MRU evicted")
                }
                _ => panic!("expected miss"),
            }
        }
    }

    #[test]
    fn random_eventually_evicts_everything() {
        let mut c = tiny(4, ReplacementPolicy::Random);
        for l in [0u64, 4, 8, 12] {
            c.access(LineAddr(l));
        }
        let mut evicted = delorean_trace::FlatSet::new();
        for i in 1..200u64 {
            if let AccessResult::Miss { evicted: Some(e) } = c.access(LineAddr(16 * i)) {
                evicted.insert(e.0 % 16);
            }
        }
        assert!(
            evicted.len() >= 3,
            "random eviction too narrow: {evicted:?}"
        );
    }

    #[test]
    fn srrip_resists_streaming_scans() {
        // One hot line re-referenced between scan bursts longer than the
        // associativity: SRRIP keeps it (its hit resets the RRPV to 0
        // while scan lines enter at 2); LRU loses it to every burst.
        let hot = LineAddr(0);
        let scan = |i: u64| LineAddr(4 + 4 * i); // same set, distinct lines
        let run = |policy| {
            let mut c = tiny(4, policy);
            c.access(hot);
            c.access(hot); // prime: under SRRIP the hit marks it near-re-reference
            let mut hot_hits = 0;
            for round in 0..50u64 {
                for b in 0..5 {
                    c.access(scan(round * 5 + b));
                }
                if c.access(hot).is_hit() {
                    hot_hits += 1;
                }
            }
            hot_hits
        };
        let srrip_hits = run(ReplacementPolicy::Srrip);
        let lru_hits = run(ReplacementPolicy::Lru);
        assert_eq!(lru_hits, 0, "LRU must thrash under the scan");
        assert_eq!(srrip_hits, 50, "SRRIP should retain the hot line");
    }

    #[test]
    fn srrip_victim_search_terminates_and_evicts() {
        let mut c = tiny(4, ReplacementPolicy::Srrip);
        for i in 0..100u64 {
            c.access(LineAddr(i * 4)); // all map to set 0
        }
        assert_eq!(c.stats().misses, 100);
        assert!(c.stats().evictions >= 96);
    }

    #[test]
    fn fill_does_not_count_access() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(LineAddr(0));
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.probe(LineAddr(0)));
        assert!(c.access(LineAddr(0)).is_hit());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn probe_set_matches_probe_plus_set_is_full() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        for i in 0..40u64 {
            c.access(LineAddr(delorean_trace::mix64(3, i) % 24));
            for l in 0..24u64 {
                let line = LineAddr(l);
                assert_eq!(
                    c.probe_set(line),
                    (c.probe(line), c.set_is_full(line)),
                    "probe_set diverged on line {l} after {i} accesses"
                );
            }
        }
    }

    #[test]
    fn occupancy_and_warm_fraction() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        assert_eq!(c.set_occupancy(LineAddr(0)), (0, 2));
        c.access(LineAddr(0));
        assert_eq!(c.set_occupancy(LineAddr(0)), (1, 2));
        assert!(!c.set_is_full(LineAddr(0)));
        c.access(LineAddr(4));
        assert!(c.set_is_full(LineAddr(0)));
        assert!((c.warm_fraction() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_removes_lines() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.access(LineAddr(0));
        assert!(c.invalidate(LineAddr(0)));
        assert!(!c.invalidate(LineAddr(0)));
        assert!(!c.probe(LineAddr(0)));
        assert_eq!(c.warm_fraction(), 0.0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        for l in 0..4u64 {
            c.access(LineAddr(l)); // four different sets
        }
        for l in 0..4u64 {
            assert!(c.probe(LineAddr(l)));
        }
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        for i in 0..50u64 {
            c.access(LineAddr(delorean_trace::mix64(1, i) % 32));
        }
        let snap = c.snapshot();
        assert!(snap.valid_lines() > 0);
        assert_eq!(snap.storage_bytes(), snap.valid_lines() * 9);
        // Mutate, restore, and verify behavioural equivalence.
        let mut probe_before: Vec<bool> = (0..32).map(|l| c.probe(LineAddr(l))).collect();
        for i in 0..100u64 {
            c.access(LineAddr(100 + i));
        }
        c.restore(&snap);
        let probe_after: Vec<bool> = (0..32).map(|l| c.probe(LineAddr(l))).collect();
        assert_eq!(probe_before, probe_after);
        // Replacement order was restored too: next evictions match a
        // freshly-restored twin.
        let mut twin = tiny(2, ReplacementPolicy::Lru);
        twin.restore(&snap);
        for i in 0..50u64 {
            let a = c.access(LineAddr(1000 + i % 8));
            let b = twin.access(LineAddr(1000 + i % 8));
            assert_eq!(a, b, "divergence after restore at step {i}");
        }
        probe_before.clear();
    }

    #[test]
    #[should_panic(expected = "snapshot geometry mismatch")]
    fn snapshot_rejects_wrong_geometry() {
        let c = tiny(2, ReplacementPolicy::Lru);
        let snap = c.snapshot();
        let mut other = tiny(4, ReplacementPolicy::Lru);
        other.restore(&snap);
    }

    #[test]
    fn lru_digest_canonicalizes_dead_bytes() {
        // Two LRU caches driven over the same cyclic line sequence, one
        // from the start and one from a cycle boundary onward, end at
        // the same stream position with the same tags and the same
        // recency *order* — but different absolute stamps and ticks (and
        // potentially different way assignments). The live-state digest
        // must see through the dead bytes; the raw snapshot must not.
        let lines = 6u64; // cycles through sets 0..=1 of the 4-set cache
        let seq = |i: u64| LineAddr(i % lines);
        let mut full = tiny(2, ReplacementPolicy::Lru);
        let mut window = tiny(2, ReplacementPolicy::Lru);
        for i in 0..3 * lines {
            full.access(seq(i));
        }
        for i in lines..3 * lines {
            window.access(seq(i));
        }
        assert_eq!(full.state_digest(7), window.state_digest(7));
        assert_ne!(full.snapshot(), window.snapshot(), "stamps must differ");
        // Equal digests ⇒ identical future behaviour, including victims.
        for i in 0..200u64 {
            let line = LineAddr(delorean_trace::mix64(9, i) % 24);
            assert_eq!(full.access(line), window.access(line), "step {i}");
            assert_eq!(full.state_digest(7), window.state_digest(7), "step {i}");
        }
    }

    #[test]
    fn digest_differs_when_tags_or_order_differ() {
        let mut a = tiny(2, ReplacementPolicy::Lru);
        let mut b = tiny(2, ReplacementPolicy::Lru);
        a.access(LineAddr(0));
        b.access(LineAddr(4)); // same set, different line
        assert_ne!(a.state_digest(7), b.state_digest(7));
        // Same resident lines, different recency order.
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let mut d = tiny(2, ReplacementPolicy::Lru);
        c.access(LineAddr(0));
        c.access(LineAddr(4));
        d.access(LineAddr(4));
        d.access(LineAddr(0));
        assert_ne!(c.state_digest(7), d.state_digest(7));
        // Seed changes the digest.
        assert_ne!(c.state_digest(7), c.state_digest(8));
    }

    #[test]
    fn rng_policies_fold_rng_and_tick() {
        // Random replacement consumes (rng, tick) on every victim pick,
        // so two caches with identical tags but different ticks are NOT
        // behaviourally equal — the digest must distinguish them.
        let mut a = tiny(2, ReplacementPolicy::Random);
        let mut b = tiny(2, ReplacementPolicy::Random);
        a.access(LineAddr(0));
        b.access(LineAddr(8)); // tick advances; line 8 maps to set 0 too
        b.invalidate(LineAddr(8));
        b.access(LineAddr(0));
        assert_ne!(a.state_digest(7), b.state_digest(7));
    }

    #[test]
    fn copy_state_from_matches_clone() {
        let mut src = tiny(4, ReplacementPolicy::PLru);
        for i in 0..300u64 {
            src.access(LineAddr(delorean_trace::mix64(5, i) % 64));
        }
        let mut dst = tiny(4, ReplacementPolicy::PLru);
        dst.access(LineAddr(999)); // dirty the destination first
        dst.copy_state_from(&src);
        assert_eq!(dst.snapshot(), src.snapshot());
        assert_eq!(dst.stats(), src.stats());
        assert_eq!(dst.state_digest(1), src.state_digest(1));
        for i in 0..100u64 {
            let line = LineAddr(delorean_trace::mix64(6, i) % 64);
            assert_eq!(dst.access(line), src.access(line), "step {i}");
        }
    }

    #[test]
    #[should_panic(expected = "cache geometry mismatch")]
    fn copy_state_rejects_wrong_geometry() {
        let src = tiny(2, ReplacementPolicy::Lru);
        let mut dst = tiny(4, ReplacementPolicy::Lru);
        dst.copy_state_from(&src);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.access(LineAddr(0));
        c.access(LineAddr(0));
        c.access(LineAddr(1));
        let s = c.stats();
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }
}
