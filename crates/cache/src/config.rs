//! Cache and machine configuration (Table 1 of the paper).

use delorean_trace::{Scale, LINE_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Replacement policy of a [`Cache`](crate::Cache).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least recently used (the paper's configuration).
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random victim.
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    PLru,
    /// Not-most-recently-used: random victim excluding the MRU way.
    Nmru,
    /// Static re-reference interval prediction (SRRIP, 2-bit): the
    /// scan-resistant age-based family the paper's §4.1 cites via
    /// Beckmann & Sanchez's RRIP models.
    Srrip,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::PLru => "tree-PLRU",
            ReplacementPolicy::Nmru => "NMRU",
            ReplacementPolicy::Srrip => "SRRIP",
        };
        f.write_str(s)
    }
}

/// Geometry and policy of one cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 everywhere in the paper).
    pub line_bytes: u64,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// An LRU cache with 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        let c = CacheConfig {
            size_bytes,
            ways,
            line_bytes: LINE_BYTES,
            replacement: ReplacementPolicy::Lru,
        };
        // lint:allow(no-unwrap): documented # Panics contract — construction fails fast on invalid geometry
        c.validate().expect("invalid cache geometry");
        c
    }

    /// Replace the replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.ways as u64
    }

    /// Check the geometry: positive sizes, capacity divisible into
    /// power-of-two sets, PLRU restricted to power-of-two ways.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || self.size_bytes == 0 || self.ways == 0 {
            return Err("sizes and associativity must be positive".into());
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes) {
            return Err("capacity must be a multiple of the line size".into());
        }
        if !self.lines().is_multiple_of(self.ways as u64) {
            return Err("lines must divide evenly into ways".into());
        }
        let sets = self.sets();
        if sets == 0 {
            return Err("associativity exceeds capacity".into());
        }
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        if self.replacement == ReplacementPolicy::PLru && !self.ways.is_power_of_two() {
            return Err("tree-PLRU requires power-of-two ways".into());
        }
        Ok(())
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kib = self.size_bytes as f64 / 1024.0;
        if kib >= 1024.0 {
            write!(
                f,
                "{:.0} MiB {}-way {}",
                kib / 1024.0,
                self.ways,
                self.replacement
            )
        } else {
            write!(f, "{kib:.0} KiB {}-way {}", self.ways, self.replacement)
        }
    }
}

/// Hierarchy geometry: the cache-side half of Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified last-level cache.
    pub llc: CacheConfig,
    /// L1-D MSHR entries (Table 1: 8).
    pub l1d_mshrs: u32,
    /// Outstanding-miss lifetime, measured in memory accesses (the
    /// trace-driven stand-in for memory latency).
    pub mshr_latency_accesses: u64,
}

impl HierarchyConfig {
    /// Table 1 at paper scale with an 8 MiB LLC.
    pub fn table1() -> Self {
        Self::for_scale_with_llc(Scale::paper(), 8 << 20)
    }

    /// Table 1 scaled, with the default 8 MiB (scaled) LLC.
    pub fn for_scale(scale: Scale) -> Self {
        Self::for_scale_with_llc(scale, 8 << 20)
    }

    /// Table 1 scaled, with an explicit paper-scale LLC size.
    pub fn for_scale_with_llc(scale: Scale, llc_paper_bytes: u64) -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(scale.bytes(64 << 10), 2),
            l1d: CacheConfig::new(scale.bytes(64 << 10), 2),
            llc: CacheConfig::new(scale.bytes(llc_paper_bytes), 8),
            l1d_mshrs: 8,
            mshr_latency_accesses: 64,
        }
    }

    /// Replace the LLC configuration.
    pub fn with_llc(mut self, llc: CacheConfig) -> Self {
        self.llc = llc;
        self
    }

    /// Validate every level.
    pub fn validate(&self) -> Result<(), String> {
        self.l1i.validate().map_err(|e| format!("l1i: {e}"))?;
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        self.llc.validate().map_err(|e| format!("llc: {e}"))?;
        if self.l1d_mshrs == 0 {
            return Err("l1d_mshrs must be positive".into());
        }
        Ok(())
    }
}

/// The full simulated machine: hierarchy plus prefetcher switch.
///
/// The CPU-side parameters (pipeline widths, predictor sizes) live in
/// `delorean-cpu`; this struct is what the warming strategies need.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Enable the 8-stream LLC stride prefetcher (§6.3.2).
    pub prefetch: bool,
}

impl MachineConfig {
    /// The Table 1 machine, scaled; prefetcher off (the paper's baseline).
    pub fn for_scale(scale: Scale) -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::for_scale(scale),
            prefetch: false,
        }
    }

    /// Same machine with a different paper-scale LLC size.
    pub fn with_llc_paper_bytes(mut self, scale: Scale, llc_paper_bytes: u64) -> Self {
        self.hierarchy = HierarchyConfig::for_scale_with_llc(scale, llc_paper_bytes);
        self
    }

    /// Enable/disable the LLC stride prefetcher.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// The paper's LLC sweep: 1 MiB to 512 MiB in powers of two (paper
    /// scale bytes; apply [`Scale::bytes`] for the experiment scale).
    pub fn llc_sweep_paper_bytes() -> Vec<u64> {
        (0..10).map(|i| (1u64 << i) << 20).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let h = HierarchyConfig::table1();
        assert_eq!(h.l1d.size_bytes, 64 << 10);
        assert_eq!(h.l1d.ways, 2);
        assert_eq!(h.l1d.sets(), 512);
        assert_eq!(h.llc.size_bytes, 8 << 20);
        assert_eq!(h.llc.ways, 8);
        assert_eq!(h.l1d_mshrs, 8);
        h.validate().unwrap();
    }

    #[test]
    fn scaled_hierarchy_stays_ordered() {
        for scale in [Scale::paper(), Scale::demo(), Scale::tiny()] {
            let h = HierarchyConfig::for_scale(scale);
            h.validate().unwrap();
            assert!(
                h.llc.size_bytes >= h.l1d.size_bytes,
                "LLC smaller than L1 at {scale}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let bad = CacheConfig {
            size_bytes: 1000,
            ways: 2,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        };
        assert!(bad.validate().is_err());
        let bad_plru = CacheConfig {
            size_bytes: 64 * 64 * 3,
            ways: 3,
            line_bytes: 64,
            replacement: ReplacementPolicy::PLru,
        };
        assert!(bad_plru.validate().is_err());
        let npo2 = CacheConfig {
            size_bytes: 64 * 24,
            ways: 2,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        };
        assert!(npo2.validate().is_err(), "12 sets is not a power of two");
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn constructor_panics_on_bad_geometry() {
        let _ = CacheConfig::new(100, 2);
    }

    #[test]
    fn llc_sweep_is_the_paper_range() {
        let sweep = MachineConfig::llc_sweep_paper_bytes();
        assert_eq!(sweep.len(), 10);
        assert_eq!(sweep[0], 1 << 20);
        assert_eq!(sweep[9], 512 << 20);
    }

    #[test]
    fn display_formats() {
        let c = CacheConfig::new(64 << 10, 2);
        assert_eq!(format!("{c}"), "64 KiB 2-way LRU");
        let l = CacheConfig::new(8 << 20, 8).with_replacement(ReplacementPolicy::Nmru);
        assert_eq!(format!("{l}"), "8 MiB 8-way NMRU");
    }
}
