//! Miss status holding registers.
//!
//! In a trace-driven simulation there is no cycle clock, so an outstanding
//! miss is modeled as occupying its MSHR for a fixed number of subsequent
//! *memory accesses* (the configured `latency_accesses`, standing in for
//! memory latency). Accesses to a line with an outstanding miss are *MSHR
//! hits* — the paper reports 96.7% of lukewarm-region requests are hits or
//! delayed hits, and DSW classifies delayed hits as hits.

use delorean_trace::LineAddr;
use serde::{Deserialize, Serialize};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrOutcome {
    /// A new entry was allocated: a genuine miss that goes to the next
    /// level.
    Allocated,
    /// The line already has an outstanding miss: a delayed hit.
    DelayedHit,
    /// All MSHRs busy: the miss still goes out, but without merge
    /// tracking (structural stall in a timing model).
    Full,
}

/// A small fully-associative MSHR file.
///
/// ```
/// use delorean_cache::{MshrFile, MshrOutcome};
/// use delorean_trace::LineAddr;
///
/// let mut m = MshrFile::new(2, 10);
/// assert_eq!(m.on_miss(LineAddr(1), 0), MshrOutcome::Allocated);
/// assert_eq!(m.on_miss(LineAddr(1), 5), MshrOutcome::DelayedHit);
/// assert_eq!(m.on_miss(LineAddr(1), 11), MshrOutcome::Allocated); // refilled
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MshrFile {
    entries: Vec<(LineAddr, u64)>, // (line, fill completion time)
    capacity: usize,
    latency_accesses: u64,
}

impl MshrFile {
    /// `capacity` registers; misses complete after `latency_accesses`
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, latency_accesses: u64) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            latency_accesses,
        }
    }

    /// Retire entries whose miss has completed by access time `now`.
    pub fn retire(&mut self, now: u64) {
        self.entries.retain(|&(_, fill_at)| fill_at > now);
    }

    /// Retire completed entries and return their lines, so the caller can
    /// perform the deferred cache fills.
    pub fn take_retired(&mut self, now: u64) -> Vec<LineAddr> {
        let mut done = Vec::new();
        self.entries.retain(|&(line, fill_at)| {
            if fill_at <= now {
                done.push(line);
                false
            } else {
                true
            }
        });
        done
    }

    /// Present a miss on `line` at access time `now`.
    pub fn on_miss(&mut self, line: LineAddr, now: u64) -> MshrOutcome {
        self.retire(now);
        if self.entries.iter().any(|&(l, _)| l == line) {
            return MshrOutcome::DelayedHit;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.push((line, now + self.latency_accesses));
        MshrOutcome::Allocated
    }

    /// Number of outstanding misses at access time `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// Drop all outstanding entries (e.g. when crossing a region boundary).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4, 100);
        assert_eq!(m.on_miss(LineAddr(7), 0), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(LineAddr(7), 1), MshrOutcome::DelayedHit);
        assert_eq!(m.on_miss(LineAddr(8), 2), MshrOutcome::Allocated);
        assert_eq!(m.outstanding(2), 2);
    }

    #[test]
    fn entries_retire_after_latency() {
        let mut m = MshrFile::new(1, 10);
        assert_eq!(m.on_miss(LineAddr(1), 0), MshrOutcome::Allocated);
        // Still outstanding just before completion.
        assert_eq!(m.on_miss(LineAddr(1), 9), MshrOutcome::DelayedHit);
        // Completed at 10: new allocation.
        assert_eq!(m.on_miss(LineAddr(1), 10), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_reports_full() {
        let mut m = MshrFile::new(2, 1000);
        m.on_miss(LineAddr(1), 0);
        m.on_miss(LineAddr(2), 0);
        assert_eq!(m.on_miss(LineAddr(3), 1), MshrOutcome::Full);
        // After retirement, capacity frees up.
        assert_eq!(m.on_miss(LineAddr(3), 2000), MshrOutcome::Allocated);
    }

    #[test]
    fn clear_drops_everything() {
        let mut m = MshrFile::new(2, 1000);
        m.on_miss(LineAddr(1), 0);
        m.clear();
        assert_eq!(m.outstanding(1), 0);
        assert_eq!(m.on_miss(LineAddr(1), 1), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0, 10);
    }
}
