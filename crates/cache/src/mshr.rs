//! Miss status holding registers.
//!
//! In a trace-driven simulation there is no cycle clock, so an outstanding
//! miss is modeled as occupying its MSHR for a fixed number of subsequent
//! *memory accesses* (the configured `latency_accesses`, standing in for
//! memory latency). Accesses to a line with an outstanding miss are *MSHR
//! hits* — the paper reports 96.7% of lukewarm-region requests are hits or
//! delayed hits, and DSW classifies delayed hits as hits.
//!
//! The file sits on the hottest loop in the repository (every functional-
//! warming access consults it), so retirement is designed around a
//! **"nothing ready ⇒ skip"** fast path: the file tracks the earliest
//! outstanding completion time, and [`MshrFile::has_ready`] turns the
//! common no-retirement case into a single compare instead of a scan.
//! Callers that perform the deferred fills retire through
//! [`MshrFile::retire_into`] and a reusable scratch buffer — no per-access
//! allocation.

use delorean_trace::LineAddr;
use serde::{Deserialize, Serialize};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrOutcome {
    /// A new entry was allocated: a genuine miss that goes to the next
    /// level.
    Allocated,
    /// The line already has an outstanding miss: a delayed hit.
    DelayedHit,
    /// All MSHRs busy: the miss still goes out, but without merge
    /// tracking (structural stall in a timing model).
    Full,
}

/// A small fully-associative MSHR file.
///
/// ```
/// use delorean_cache::{MshrFile, MshrOutcome};
/// use delorean_trace::LineAddr;
///
/// let mut m = MshrFile::new(2, 10);
/// assert_eq!(m.on_miss(LineAddr(1), 0), MshrOutcome::Allocated);
/// assert_eq!(m.on_miss(LineAddr(1), 5), MshrOutcome::DelayedHit);
/// assert_eq!(m.on_miss(LineAddr(1), 11), MshrOutcome::Allocated); // refilled
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MshrFile {
    entries: Vec<(LineAddr, u64)>, // (line, fill completion time)
    capacity: usize,
    latency_accesses: u64,
    /// Earliest outstanding completion time; `u64::MAX` when empty. Lets
    /// every retirement query short-circuit without touching `entries`.
    next_fill_at: u64,
}

impl MshrFile {
    /// `capacity` registers; misses complete after `latency_accesses`
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, latency_accesses: u64) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            latency_accesses,
            next_fill_at: u64::MAX,
        }
    }

    /// `true` if at least one entry has completed by access time `now` —
    /// the retirement fast path: one compare, no scan. (An empty file
    /// stores the sentinel `u64::MAX`, so `now == u64::MAX` may report
    /// ready spuriously; the follow-up retire is then a no-op.)
    #[inline]
    pub fn has_ready(&self, now: u64) -> bool {
        self.next_fill_at <= now
    }

    /// Retire entries whose miss has completed by access time `now`.
    pub fn retire(&mut self, now: u64) {
        if !self.has_ready(now) {
            return;
        }
        self.entries.retain(|&(_, fill_at)| fill_at > now);
        self.recompute_next();
    }

    /// Retire completed entries, **appending** their lines to `out` so the
    /// caller can perform the deferred cache fills. `out` is a reusable
    /// scratch buffer — this never allocates once `out` has warmed up to
    /// the MSHR capacity.
    pub fn retire_into(&mut self, now: u64, out: &mut Vec<LineAddr>) {
        if !self.has_ready(now) {
            return;
        }
        self.entries.retain(|&(line, fill_at)| {
            if fill_at <= now {
                out.push(line);
                false
            } else {
                true
            }
        });
        self.recompute_next();
    }

    /// Retire completed entries and return their lines in a fresh vector.
    ///
    /// Convenience wrapper over [`MshrFile::retire_into`] for cold paths
    /// and tests; hot loops should hold a scratch buffer instead.
    pub fn take_retired(&mut self, now: u64) -> Vec<LineAddr> {
        let mut done = Vec::new();
        self.retire_into(now, &mut done);
        done
    }

    /// Present a miss on `line` at access time `now`.
    pub fn on_miss(&mut self, line: LineAddr, now: u64) -> MshrOutcome {
        // `retire` is a no-op unless something actually completed, so the
        // common case runs exactly one scan (the merge check below)
        // instead of the historical retain-then-any double scan.
        self.retire(now);
        if self.entries.iter().any(|&(l, _)| l == line) {
            return MshrOutcome::DelayedHit;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let fill_at = now + self.latency_accesses;
        self.entries.push((line, fill_at));
        self.next_fill_at = self.next_fill_at.min(fill_at);
        MshrOutcome::Allocated
    }

    /// Number of outstanding misses at access time `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// Drop all outstanding entries (e.g. when crossing a region boundary).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_fill_at = u64::MAX;
    }

    /// Adopt another file's state, reusing this file's entry allocation.
    ///
    /// # Panics
    ///
    /// Panics if capacity or latency differ — MSHR shape is hardware
    /// configuration, not state.
    pub fn copy_state_from(&mut self, other: &MshrFile) {
        assert_eq!(self.capacity, other.capacity, "MSHR capacity mismatch");
        assert_eq!(
            self.latency_accesses, other.latency_accesses,
            "MSHR latency mismatch"
        );
        self.entries.clone_from(&other.entries);
        self.next_fill_at = other.next_fill_at;
    }

    /// A [`mix64`](delorean_trace::mix64) fold over the file's live
    /// state: outstanding entries **in allocation order** (retirement
    /// preserves order, and the order of the deferred L1 fills is
    /// architecturally visible), plus the shape parameters. Completion
    /// times are absolute access indices, which both the warm chain and
    /// a window-warmed proxy derive from the same access stream —
    /// `next_fill_at` is derived from the entries and not folded.
    pub fn state_digest(&self, seed: u64) -> u64 {
        use delorean_trace::mix64;
        let mut d = mix64(seed, (self.capacity as u64) << 32 | self.latency_accesses);
        for &(line, fill_at) in &self.entries {
            d = mix64(d, line.0);
            d = mix64(d, fill_at);
        }
        d
    }

    fn recompute_next(&mut self) {
        self.next_fill_at = self
            .entries
            .iter()
            .map(|&(_, fill_at)| fill_at)
            .min()
            .unwrap_or(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4, 100);
        assert_eq!(m.on_miss(LineAddr(7), 0), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(LineAddr(7), 1), MshrOutcome::DelayedHit);
        assert_eq!(m.on_miss(LineAddr(8), 2), MshrOutcome::Allocated);
        assert_eq!(m.outstanding(2), 2);
    }

    #[test]
    fn entries_retire_after_latency() {
        let mut m = MshrFile::new(1, 10);
        assert_eq!(m.on_miss(LineAddr(1), 0), MshrOutcome::Allocated);
        // Still outstanding just before completion.
        assert_eq!(m.on_miss(LineAddr(1), 9), MshrOutcome::DelayedHit);
        // Completed at 10: new allocation.
        assert_eq!(m.on_miss(LineAddr(1), 10), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_reports_full() {
        let mut m = MshrFile::new(2, 1000);
        m.on_miss(LineAddr(1), 0);
        m.on_miss(LineAddr(2), 0);
        assert_eq!(m.on_miss(LineAddr(3), 1), MshrOutcome::Full);
        // After retirement, capacity frees up.
        assert_eq!(m.on_miss(LineAddr(3), 2000), MshrOutcome::Allocated);
    }

    #[test]
    fn clear_drops_everything() {
        let mut m = MshrFile::new(2, 1000);
        m.on_miss(LineAddr(1), 0);
        m.clear();
        assert_eq!(m.outstanding(1), 0);
        assert!(!m.has_ready(1 << 40));
        assert_eq!(m.on_miss(LineAddr(1), 1), MshrOutcome::Allocated);
    }

    #[test]
    fn has_ready_tracks_earliest_completion() {
        let mut m = MshrFile::new(4, 10);
        assert!(!m.has_ready(1 << 40), "empty file has no finite work");
        m.on_miss(LineAddr(1), 0); // completes at 10
        m.on_miss(LineAddr(2), 5); // completes at 15
        assert!(!m.has_ready(9));
        assert!(m.has_ready(10));
        // Retiring the earliest entry advances the fast-path threshold.
        m.retire(10);
        assert!(!m.has_ready(14));
        assert!(m.has_ready(15));
    }

    #[test]
    fn retire_into_appends_to_scratch() {
        let mut m = MshrFile::new(4, 10);
        m.on_miss(LineAddr(1), 0);
        m.on_miss(LineAddr(2), 3);
        let mut scratch = vec![LineAddr(99)];
        m.retire_into(10, &mut scratch);
        assert_eq!(scratch, vec![LineAddr(99), LineAddr(1)]);
        scratch.clear();
        m.retire_into(13, &mut scratch);
        assert_eq!(scratch, vec![LineAddr(2)]);
        assert_eq!(m.outstanding(13), 0);
    }

    #[test]
    fn take_retired_matches_retire_into() {
        let mut a = MshrFile::new(4, 7);
        let mut b = MshrFile::new(4, 7);
        for (i, line) in [3u64, 9, 27, 81].into_iter().enumerate() {
            a.on_miss(LineAddr(line), i as u64);
            b.on_miss(LineAddr(line), i as u64);
        }
        let taken = a.take_retired(9);
        let mut scratch = Vec::new();
        b.retire_into(9, &mut scratch);
        assert_eq!(taken, scratch);
        assert_eq!(a.outstanding(9), b.outstanding(9));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0, 10);
    }
}
