//! Set-associative multi-level cache simulation.
//!
//! This crate is the cache substrate the DeLorean reproduction builds on —
//! the role gem5's "classic" memory system plays in the paper. It provides:
//!
//! * [`Cache`] — a set-associative cache with LRU, FIFO, random, tree-PLRU
//!   and NMRU replacement (the policy spread §4.1 argues statistical models
//!   cover).
//! * [`MshrFile`] — miss status holding registers; accesses to lines with
//!   an outstanding miss become *MSHR hits* (delayed hits), which the DSW
//!   classifier models as hits (§3.1.2).
//! * [`Hierarchy`] — the Table 1 machine: split 2-way 64 KiB L1s and a
//!   unified 8-way LLC from 1 MiB to 512 MiB, with per-level statistics.
//! * [`StridePrefetcher`] — the 8-stream LLC stride prefetcher of §6.3.2,
//!   trainable from either simulated or *predicted* misses.
//!
//! Modeling notes (documented substitutions): caches are read-allocate and
//! write-allocate with no dirty-eviction traffic (the methodology
//! classifies hits/misses; writeback bandwidth is out of scope), and the
//! instruction side is modeled by fetching the line containing each PC.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod hierarchy;
mod mshr;
mod prefetch;
mod stats;

pub use cache::{AccessResult, Cache, CacheSnapshot};
pub use config::{CacheConfig, HierarchyConfig, MachineConfig, ReplacementPolicy};
pub use hierarchy::{Hierarchy, HierarchySnapshot, MemLevel};
pub use mshr::{MshrFile, MshrOutcome};
pub use prefetch::StridePrefetcher;
pub use stats::{CacheStats, HierarchyStats};
