//! Cache and hierarchy statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss counters of a single cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found their line.
    pub hits: u64,
    /// Accesses that filled their line.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 for no accesses.
    pub fn hit_rate(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Miss rate in `[0, 1]`; 0 for no accesses.
    pub fn miss_rate(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }

    /// Misses per kilo-instruction given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accumulate another stats block.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Per-level outcome counters of a [`Hierarchy`](crate::Hierarchy).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Data accesses that hit in the L1-D.
    pub l1d_hits: u64,
    /// Data accesses merged into an outstanding miss (delayed hits).
    pub mshr_hits: u64,
    /// Data accesses that hit in the LLC.
    pub llc_hits: u64,
    /// Data accesses served by memory.
    pub memory: u64,
    /// Instruction fetches that missed the L1-I.
    pub l1i_misses: u64,
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Prefetch requests dropped because the line was already cached.
    pub prefetches_nullified: u64,
}

impl HierarchyStats {
    /// Total data accesses observed.
    pub fn data_accesses(&self) -> u64 {
        self.l1d_hits + self.mshr_hits + self.llc_hits + self.memory
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.memory as f64 * 1000.0 / instructions as f64
        }
    }

    /// Fraction of data accesses that were L1 or MSHR (delayed) hits — the
    /// quantity the paper reports as 96.7% on average for lukewarm caches.
    pub fn l1_or_mshr_hit_rate(&self) -> f64 {
        let t = self.data_accesses();
        if t == 0 {
            0.0
        } else {
            (self.l1d_hits + self.mshr_hits) as f64 / t as f64
        }
    }

    /// Accumulate another stats block.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1d_hits += other.l1d_hits;
        self.mshr_hits += other.mshr_hits;
        self.llc_hits += other.llc_hits;
        self.memory += other.memory;
        self.l1i_misses += other.l1i_misses;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_nullified += other.prefetches_nullified;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_mpki() {
        let s = CacheStats {
            hits: 75,
            misses: 25,
            evictions: 10,
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.mpki(10_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 0,
        };
        a.merge(&CacheStats {
            hits: 3,
            misses: 4,
            evictions: 5,
        });
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 6);
        assert_eq!(a.evictions, 5);
    }

    #[test]
    fn hierarchy_rates() {
        let h = HierarchyStats {
            l1d_hits: 90,
            mshr_hits: 5,
            llc_hits: 3,
            memory: 2,
            ..Default::default()
        };
        assert_eq!(h.data_accesses(), 100);
        assert!((h.l1_or_mshr_hit_rate() - 0.95).abs() < 1e-12);
        assert!((h.llc_mpki(1000) - 2.0).abs() < 1e-12);
    }
}
