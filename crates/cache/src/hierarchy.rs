//! The Table 1 cache hierarchy: split L1s, unified LLC, L1-D MSHRs, and an
//! optional LLC stride prefetcher.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::StridePrefetcher;
use crate::stats::HierarchyStats;
use delorean_trace::{LineAddr, Pc, LINE_BYTES};

/// The level that served a data access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// L1-D hit.
    L1,
    /// Merged into an outstanding miss (MSHR / delayed hit).
    Mshr,
    /// LLC hit.
    Llc,
    /// Served by main memory.
    Memory,
}

impl MemLevel {
    /// Hits that the DSW classifier treats as cache hits outright
    /// (§3.1.2: lukewarm cache hits and MSHR hits).
    pub fn is_l1_or_mshr_hit(&self) -> bool {
        matches!(self, MemLevel::L1 | MemLevel::Mshr)
    }

    /// `true` if the access left the L1 (LLC hit or memory).
    pub fn missed_l1(&self) -> bool {
        matches!(self, MemLevel::Llc | MemLevel::Memory)
    }
}

/// A two-level cache hierarchy with MSHR-mediated L1 fills.
///
/// L1-D fills are deferred behind the MSHR file: a miss allocates an MSHR
/// entry, the LLC (and memory) are accessed immediately, and the L1 line
/// becomes visible once the entry retires. Accesses to in-flight lines are
/// reported as [`MemLevel::Mshr`] — the delayed hits of the paper.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    mshr_d: MshrFile,
    prefetcher: Option<StridePrefetcher>,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Build the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &MachineConfig) -> Self {
        cfg.hierarchy.validate().expect("invalid hierarchy config");
        Hierarchy {
            l1i: Cache::new(cfg.hierarchy.l1i),
            l1d: Cache::new(cfg.hierarchy.l1d),
            llc: Cache::new(cfg.hierarchy.llc),
            mshr_d: MshrFile::new(cfg.hierarchy.l1d_mshrs, cfg.hierarchy.mshr_latency_accesses),
            prefetcher: cfg.prefetch.then(StridePrefetcher::paper_default),
            stats: HierarchyStats::default(),
        }
    }

    /// Issue a data access at access-time `now`; returns the serving level.
    pub fn access_data(&mut self, pc: Pc, line: LineAddr, now: u64) -> MemLevel {
        // Complete any fills whose latency has elapsed.
        for done in self.mshr_d.take_retired(now) {
            self.l1d.fill(done);
        }
        if self.l1d.lookup(line) {
            self.stats.l1d_hits += 1;
            return MemLevel::L1;
        }
        match self.mshr_d.on_miss(line, now) {
            MshrOutcome::DelayedHit => {
                self.stats.mshr_hits += 1;
                MemLevel::Mshr
            }
            MshrOutcome::Allocated | MshrOutcome::Full => {
                if self.llc.access(line).is_hit() {
                    self.stats.llc_hits += 1;
                    MemLevel::Llc
                } else {
                    self.stats.memory += 1;
                    self.train_prefetcher(pc, line);
                    MemLevel::Memory
                }
            }
        }
    }

    /// Feed the prefetcher a (real or predicted) LLC miss and apply the
    /// resulting fills. Public so that DeLorean's analyst can drive it from
    /// *predicted* misses (§6.3.2).
    pub fn train_prefetcher(&mut self, pc: Pc, line: LineAddr) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        for l in pf.on_trigger(pc, line) {
            self.stats.prefetches_issued += 1;
            if self.llc.probe(l) {
                // Already resident: nullified to save bandwidth (§6.3.2).
                self.stats.prefetches_nullified += 1;
            } else {
                self.llc.fill(l);
            }
        }
    }

    /// Fetch the instruction at `pc` (modeled as touching the line that
    /// contains the PC).
    pub fn access_instr(&mut self, pc: Pc) {
        let line = LineAddr(pc.0 / LINE_BYTES);
        if !self.l1i.access(line).is_hit() {
            self.stats.l1i_misses += 1;
            self.llc.access(line);
        }
    }

    /// Fill a line into L1-D and the LLC without counting an access
    /// (state transplant during warming).
    pub fn fill_data(&mut self, line: LineAddr) {
        self.llc.fill(line);
        self.l1d.fill(line);
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Mutable access to the L1 data cache (used by the DSW classifier's
    /// lukewarm bookkeeping).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// The unified last-level cache.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Mutable access to the LLC.
    pub fn llc_mut(&mut self) -> &mut Cache {
        &mut self.llc
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Mutable access to the L1-D MSHR file.
    pub fn mshr_d_mut(&mut self) -> &mut MshrFile {
        &mut self.mshr_d
    }

    /// Hierarchy-level statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zero the statistics, keeping all cache state.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.llc.reset_stats();
    }

    /// Capture the full hierarchy state (all three caches) for
    /// checkpointed warming. Outstanding MSHRs are completed first — a
    /// checkpoint is taken at a quiesced boundary.
    pub fn snapshot(&mut self) -> HierarchySnapshot {
        self.drain_mshrs();
        HierarchySnapshot {
            l1i: self.l1i.snapshot(),
            l1d: self.l1d.snapshot(),
            llc: self.llc.snapshot(),
        }
    }

    /// Restore a previously captured hierarchy state.
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry does not match.
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        self.l1i.restore(&snapshot.l1i);
        self.l1d.restore(&snapshot.l1d);
        self.llc.restore(&snapshot.llc);
        self.mshr_d.clear();
    }

    /// Drop outstanding MSHR state (e.g. at region boundaries).
    pub fn drain_mshrs(&mut self) {
        // Complete the fills the entries stood for, then clear.
        for done in self.mshr_d.take_retired(u64::MAX) {
            self.l1d.fill(done);
        }
        self.mshr_d.clear();
    }
}

/// A full-hierarchy checkpoint (the paper's Flex-point / Live-point /
/// memory-hierarchy-state family, §7).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HierarchySnapshot {
    l1i: crate::cache::CacheSnapshot,
    l1d: crate::cache::CacheSnapshot,
    llc: crate::cache::CacheSnapshot,
}

impl HierarchySnapshot {
    /// Live-points-style storage footprint of the checkpoint.
    pub fn storage_bytes(&self) -> u64 {
        self.l1i.storage_bytes() + self.l1d.storage_bytes() + self.llc.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::Scale;

    fn machine() -> MachineConfig {
        MachineConfig::for_scale(Scale::tiny())
    }

    #[test]
    fn cold_access_goes_to_memory_then_llc_then_l1() {
        let mut h = Hierarchy::new(&machine());
        let pc = Pc(0x400);
        assert_eq!(h.access_data(pc, LineAddr(5), 0), MemLevel::Memory);
        // In-flight: delayed hit.
        assert_eq!(h.access_data(pc, LineAddr(5), 1), MemLevel::Mshr);
        // After the MSHR latency the L1 fill completed.
        let lat = machine().hierarchy.mshr_latency_accesses;
        assert_eq!(h.access_data(pc, LineAddr(5), lat + 1), MemLevel::L1);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        // Explicit geometry: 4 KiB L1s, 64 KiB LLC (16× larger).
        let cfg = MachineConfig {
            hierarchy: crate::config::HierarchyConfig {
                l1i: crate::CacheConfig::new(4 << 10, 2),
                l1d: crate::CacheConfig::new(4 << 10, 2),
                llc: crate::CacheConfig::new(64 << 10, 8),
                l1d_mshrs: 8,
                mshr_latency_accesses: 4,
            },
            prefetch: false,
        };
        let mut h = Hierarchy::new(&cfg);
        let pc = Pc(0x400);
        let l1_lines = h.l1d().config().lines(); // 64
        h.access_data(pc, LineAddr(7), 0);
        h.drain_mshrs();
        // Thrash the L1 with 4× its capacity in distinct lines (all within
        // the LLC), spaced far apart in time so every fill completes.
        for i in 0..l1_lines * 4 {
            h.access_data(pc, LineAddr(1_000 + i), 10 + i * 10);
        }
        h.drain_mshrs();
        let now = 10 + l1_lines * 40 + 1;
        let level = h.access_data(pc, LineAddr(7), now);
        assert_eq!(level, MemLevel::Llc, "line 7 should have fallen to LLC");
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::new(&machine());
        let pc = Pc(0x400);
        h.access_data(pc, LineAddr(1), 0); // memory
        h.access_data(pc, LineAddr(1), 1); // mshr
        h.drain_mshrs();
        h.access_data(pc, LineAddr(1), 200); // l1
        let s = h.stats();
        assert_eq!(s.memory, 1);
        assert_eq!(s.mshr_hits, 1);
        assert_eq!(s.l1d_hits, 1);
        assert_eq!(s.data_accesses(), 3);
    }

    #[test]
    fn instruction_side_warms_quickly() {
        let mut h = Hierarchy::new(&machine());
        for _ in 0..3 {
            for pc in 0..64u64 {
                h.access_instr(Pc(0x1000 + pc * 4));
            }
        }
        // 64 PCs × 4 B = 4 lines; only the first round misses.
        assert_eq!(h.stats().l1i_misses, 4);
    }

    #[test]
    fn prefetcher_fills_ahead_of_streams() {
        let cfg = machine().with_prefetch(true);
        let mut h = Hierarchy::new(&cfg);
        let pc = Pc(0x777);
        // A long unit-stride miss stream in line space.
        let mut mem_misses = 0;
        for i in 0..64u64 {
            let line = LineAddr(10_000 + i);
            if h.access_data(pc, line, i * 100) == MemLevel::Memory {
                mem_misses += 1;
            }
        }
        assert!(h.stats().prefetches_issued > 0);
        // With degree-2 prefetch, far fewer than 64 memory misses remain.
        assert!(
            mem_misses < 40,
            "prefetcher ineffective: {mem_misses} memory misses"
        );
    }

    #[test]
    fn fill_data_transplants_state() {
        let mut h = Hierarchy::new(&machine());
        h.fill_data(LineAddr(42));
        assert_eq!(h.access_data(Pc(1), LineAddr(42), 0), MemLevel::L1);
    }

    #[test]
    fn drain_mshrs_completes_fills() {
        let mut h = Hierarchy::new(&machine());
        h.access_data(Pc(1), LineAddr(9), 0);
        h.drain_mshrs();
        assert_eq!(h.access_data(Pc(1), LineAddr(9), 1), MemLevel::L1);
    }
}
