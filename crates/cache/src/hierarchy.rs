//! The Table 1 cache hierarchy: split L1s, unified LLC, L1-D MSHRs, and an
//! optional LLC stride prefetcher.
//!
//! # The two access paths
//!
//! * **Per-access** — [`Hierarchy::access_data`]: one line at a time,
//!   returns the serving [`MemLevel`]. This is the right path for random
//!   probes and for detailed simulation, where the outcome of each access
//!   feeds the timing model before the next one is issued.
//! * **Batched warm** — [`Hierarchy::warm_slice`] /
//!   [`Hierarchy::warm_range`]: consume cursor-filled slices of accesses
//!   in one call. Functional warming does not need per-access outcomes
//!   (only the resulting cache state and the level counters), so the warm
//!   loops of SMARTS, checkpointed warming and MRRL feed whole batches
//!   straight from [`AccessCursor::fill`](delorean_trace::AccessCursor)
//!   with no per-access closure or virtual dispatch in between.
//!
//! Both paths run the **same** inlined access core, so they are
//! bit-identical in cache state, MSHR state and statistics — pinned by
//! the `batched_equivalence` property tests and re-checked by the
//! `bench_pr4` oracle.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::StridePrefetcher;
use crate::stats::HierarchyStats;
use delorean_trace::{LineAddr, MemAccess, Pc, Workload, CURSOR_BATCH, LINE_BYTES};
use std::ops::Range;

/// The level that served a data access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// L1-D hit.
    L1,
    /// Merged into an outstanding miss (MSHR / delayed hit).
    Mshr,
    /// LLC hit.
    Llc,
    /// Served by main memory.
    Memory,
}

impl MemLevel {
    /// Hits that the DSW classifier treats as cache hits outright
    /// (§3.1.2: lukewarm cache hits and MSHR hits).
    pub fn is_l1_or_mshr_hit(&self) -> bool {
        matches!(self, MemLevel::L1 | MemLevel::Mshr)
    }

    /// `true` if the access left the L1 (LLC hit or memory).
    pub fn missed_l1(&self) -> bool {
        matches!(self, MemLevel::Llc | MemLevel::Memory)
    }
}

/// A two-level cache hierarchy with MSHR-mediated L1 fills.
///
/// L1-D fills are deferred behind the MSHR file: a miss allocates an MSHR
/// entry, the LLC (and memory) are accessed immediately, and the L1 line
/// becomes visible once the entry retires. Accesses to in-flight lines are
/// reported as [`MemLevel::Mshr`] — the delayed hits of the paper.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    mshr_d: MshrFile,
    prefetcher: Option<StridePrefetcher>,
    stats: HierarchyStats,
    /// Reusable scratch for MSHR retirements: the deferred L1 fills of an
    /// access are collected here instead of a fresh `Vec` per access.
    retired: Vec<LineAddr>,
    /// Adaptive batched-warm state: whether the recent L1-D miss rate is
    /// high enough for LLC tag-row lookahead to pay off (see
    /// [`Hierarchy::warm_slice`]). Not part of the architectural state.
    warm_llc_lookahead: bool,
    /// Data accesses and L1-D hits at the end of the previous warm batch,
    /// for the adaptive miss-rate estimate.
    warm_marker: (u64, u64),
}

impl Hierarchy {
    /// Build the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &MachineConfig) -> Self {
        // lint:allow(no-unwrap): documented # Panics contract — construction fails fast on an invalid hierarchy
        cfg.hierarchy.validate().expect("invalid hierarchy config");
        Hierarchy {
            l1i: Cache::new(cfg.hierarchy.l1i),
            l1d: Cache::new(cfg.hierarchy.l1d),
            llc: Cache::new(cfg.hierarchy.llc),
            mshr_d: MshrFile::new(cfg.hierarchy.l1d_mshrs, cfg.hierarchy.mshr_latency_accesses),
            prefetcher: cfg.prefetch.then(StridePrefetcher::paper_default),
            stats: HierarchyStats::default(),
            retired: Vec::new(),
            warm_llc_lookahead: false,
            warm_marker: (0, 0),
        }
    }

    /// The access core shared by the per-access and batched paths: both
    /// must agree bit-for-bit, so there is exactly one implementation.
    #[inline]
    fn access_data_inner(&mut self, pc: Pc, line: LineAddr, now: u64) -> MemLevel {
        // Complete any fills whose latency has elapsed. `has_ready` is a
        // single compare, so the common nothing-to-retire case skips the
        // MSHR file entirely.
        if self.mshr_d.has_ready(now) {
            self.retired.clear();
            self.mshr_d.retire_into(now, &mut self.retired);
            for &done in &self.retired {
                self.l1d.fill(done);
            }
        }
        if self.l1d.lookup(line) {
            self.stats.l1d_hits += 1;
            return MemLevel::L1;
        }
        match self.mshr_d.on_miss(line, now) {
            MshrOutcome::DelayedHit => {
                self.stats.mshr_hits += 1;
                MemLevel::Mshr
            }
            MshrOutcome::Allocated | MshrOutcome::Full => {
                if self.llc.access(line).is_hit() {
                    self.stats.llc_hits += 1;
                    MemLevel::Llc
                } else {
                    self.stats.memory += 1;
                    self.train_prefetcher(pc, line);
                    MemLevel::Memory
                }
            }
        }
    }

    /// Issue a data access at access-time `now`; returns the serving level.
    ///
    /// This is the per-access path — random probes and detailed
    /// simulation, where each outcome feeds the timing model. Sequential
    /// warm loops should use [`Hierarchy::warm_slice`] or
    /// [`Hierarchy::warm_range`] instead.
    pub fn access_data(&mut self, pc: Pc, line: LineAddr, now: u64) -> MemLevel {
        self.access_data_inner(pc, line, now)
    }

    /// Warm the hierarchy with a batch of consecutive accesses, using each
    /// access's stream `index` as its access time — exactly what every
    /// functional warm loop does per access, minus the per-access closure.
    ///
    /// Bit-identical to calling [`Hierarchy::access_data`]`(a.pc,
    /// a.line(), a.index)` for each element in order; only the per-access
    /// outcomes are not materialized (warming consumes state and
    /// counters, not levels).
    pub fn warm_slice(&mut self, batch: &[MemAccess]) {
        // Knowing the whole batch up front, the loop can touch the LLC
        // set metadata of an access a few iterations ahead, overlapping
        // the host-cache misses on the tag arrays with the simulation of
        // the current access — a lookahead the one-at-a-time API
        // structurally cannot have. The touches observe nothing, so
        // equivalence with the per-access path is untouched. They only
        // pay off when L1 misses actually reach the LLC arrays, so the
        // lookahead adapts to the miss rate of the previous batch.
        const LOOKAHEAD: usize = 8;
        if self.warm_llc_lookahead {
            for (i, a) in batch.iter().enumerate() {
                if let Some(ahead) = batch.get(i + LOOKAHEAD) {
                    self.llc.prefetch_set(ahead.addr.line());
                }
                self.access_data_inner(a.pc, a.addr.line(), a.index);
            }
        } else {
            for a in batch {
                self.access_data_inner(a.pc, a.addr.line(), a.index);
            }
        }
        let (seen, l1) = (self.stats.data_accesses(), self.stats.l1d_hits);
        let delta = seen.saturating_sub(self.warm_marker.0);
        let l1_delta = l1.saturating_sub(self.warm_marker.1);
        // Hysteresis-free threshold: lookahead on when >1/16 of the
        // batch's accesses left the L1.
        self.warm_llc_lookahead = delta.saturating_sub(l1_delta) * 16 > delta;
        self.warm_marker = (seen, l1);
    }

    /// Warm the hierarchy with the workload accesses in `accesses`,
    /// streaming cursor-filled batches through [`Hierarchy::warm_slice`].
    ///
    /// This is the whole SMARTS / checkpoint-preparation / MRRL warm loop
    /// in one call: cursor → slice → hierarchy, no per-access dispatch.
    /// The batch is kept smaller than the generic [`CURSOR_BATCH`]: the
    /// access buffer competes with the simulated tag arrays for the host
    /// L1, and the warm loop re-reads both every iteration.
    ///
    /// ```
    /// use delorean_cache::{Hierarchy, MachineConfig};
    /// use delorean_trace::{spec_workload, Scale};
    ///
    /// let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
    /// let mut h = Hierarchy::new(&MachineConfig::for_scale(Scale::tiny()));
    /// h.warm_range(&w, 0..10_000);
    /// let stats = h.stats();
    /// assert_eq!(stats.data_accesses(), 10_000);
    /// // A warmed hot-set workload hits mostly in the L1.
    /// assert!(stats.l1d_hits > stats.memory);
    /// ```
    pub fn warm_range(&mut self, workload: &dyn Workload, accesses: Range<u64>) {
        const WARM_BATCH: usize = CURSOR_BATCH / 4;
        let mut cursor = workload.cursor(accesses);
        let mut buf = Vec::with_capacity(WARM_BATCH);
        while cursor.fill(&mut buf, WARM_BATCH) > 0 {
            self.warm_slice(&buf);
        }
    }

    /// Feed the prefetcher a (real or predicted) LLC miss and apply the
    /// resulting fills. Public so that DeLorean's analyst can drive it from
    /// *predicted* misses (§6.3.2).
    pub fn train_prefetcher(&mut self, pc: Pc, line: LineAddr) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        for l in pf.on_trigger(pc, line) {
            self.stats.prefetches_issued += 1;
            if self.llc.probe(l) {
                // Already resident: nullified to save bandwidth (§6.3.2).
                self.stats.prefetches_nullified += 1;
            } else {
                self.llc.fill(l);
            }
        }
    }

    /// Fetch the instruction at `pc` (modeled as touching the line that
    /// contains the PC).
    pub fn access_instr(&mut self, pc: Pc) {
        let line = LineAddr(pc.0 / LINE_BYTES);
        if !self.l1i.access(line).is_hit() {
            self.stats.l1i_misses += 1;
            self.llc.access(line);
        }
    }

    /// Fill a line into L1-D and the LLC without counting an access
    /// (state transplant during warming).
    pub fn fill_data(&mut self, line: LineAddr) {
        self.llc.fill(line);
        self.l1d.fill(line);
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Mutable access to the L1 data cache (used by the DSW classifier's
    /// lukewarm bookkeeping).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// The unified last-level cache.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Mutable access to the LLC.
    pub fn llc_mut(&mut self) -> &mut Cache {
        &mut self.llc
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Mutable access to the L1-D MSHR file.
    pub fn mshr_d_mut(&mut self) -> &mut MshrFile {
        &mut self.mshr_d
    }

    /// Hierarchy-level statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zero the statistics, keeping all cache state.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.llc.reset_stats();
        // The adaptive-lookahead marker mirrors the counters it is
        // diffed against.
        self.warm_marker = (0, 0);
        self.warm_llc_lookahead = false;
    }

    /// Fork the **complete** hierarchy state — caches, in-flight MSHRs,
    /// prefetcher streams, statistics — as the seed of an independent
    /// region unit.
    ///
    /// Unlike [`Hierarchy::snapshot`], forking does *not* quiesce: the
    /// fork continues bit-for-bit exactly where this hierarchy stands,
    /// outstanding misses included, which is what lets the region
    /// scheduler hand a warm boundary state to a parallel measure body
    /// while the warm lane keeps advancing the original. The cost is a
    /// deep copy of the tag/stamp arrays (a few hundred KiB at demo
    /// scale) — cheap next to warming even one region interval.
    pub fn fork(&self) -> Hierarchy {
        self.clone()
    }

    /// Capture the full hierarchy state (all three caches) for
    /// checkpointed warming. Outstanding MSHRs are completed first — a
    /// checkpoint is taken at a quiesced boundary.
    pub fn snapshot(&mut self) -> HierarchySnapshot {
        self.drain_mshrs();
        HierarchySnapshot {
            l1i: self.l1i.snapshot(),
            l1d: self.l1d.snapshot(),
            llc: self.llc.snapshot(),
        }
    }

    /// Restore a previously captured hierarchy state.
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry does not match.
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        self.l1i.restore(&snapshot.l1i);
        self.l1d.restore(&snapshot.l1d);
        self.llc.restore(&snapshot.llc);
        self.mshr_d.clear();
    }

    /// A cheap digest of the hierarchy's **behaviorally live** state:
    /// a [`mix64`](delorean_trace::mix64) fold over all three caches
    /// (policy-aware, see [`Cache::state_digest`]), the in-flight L1-D
    /// MSHR entries, and the prefetcher streams if enabled.
    ///
    /// This is the commit test of the speculative warm lane: two
    /// hierarchies with equal digests produce identical [`MemLevel`]
    /// sequences, statistics deltas and eviction streams for any
    /// subsequent accesses, so a measurement taken from one is valid for
    /// the other. The digest deliberately canonicalizes away dead bytes
    /// (absolute LRU stamps, way permutations in symmetric policies,
    /// the prefetcher's absolute trigger tick) — that is what lets a
    /// *directed warm-up window replayed from cold* reproduce the live
    /// state of a full sequential warm chain and commit against it.
    ///
    /// Statistics, the MSHR-retirement scratch and the adaptive
    /// batched-warm hints are not architectural state and are excluded.
    pub fn state_digest(&self) -> u64 {
        let mut d = self.l1i.state_digest(0x00d1_0c0d_e57a_7e00);
        d = self.l1d.state_digest(d);
        d = self.llc.state_digest(d);
        d = self.mshr_d.state_digest(d);
        match &self.prefetcher {
            Some(pf) => pf.state_digest(d),
            None => delorean_trace::mix64(d, 0x0ff),
        }
    }

    /// Adopt `other`'s complete state in place, reusing this hierarchy's
    /// allocations (`clone_from` on every tag/stamp array) — the cheap
    /// restore path for code that repeatedly re-seeds a scratch
    /// hierarchy, where [`Hierarchy::fork`] would allocate fresh arrays
    /// per call. Behaviorally equivalent to `*self = other.fork()`.
    ///
    /// # Panics
    ///
    /// Panics if the two hierarchies were built from different machine
    /// configurations (geometry or MSHR shape).
    pub fn copy_state_from(&mut self, other: &Hierarchy) {
        self.l1i.copy_state_from(&other.l1i);
        self.l1d.copy_state_from(&other.l1d);
        self.llc.copy_state_from(&other.llc);
        self.mshr_d.copy_state_from(&other.mshr_d);
        match (&mut self.prefetcher, &other.prefetcher) {
            (Some(mine), Some(theirs)) => mine.copy_state_from(theirs),
            (mine, theirs) => *mine = theirs.clone(),
        }
        self.stats = other.stats;
        self.retired.clear();
        self.warm_llc_lookahead = other.warm_llc_lookahead;
        self.warm_marker = other.warm_marker;
    }

    /// Drop outstanding MSHR state (e.g. at region boundaries).
    pub fn drain_mshrs(&mut self) {
        // Complete the fills the entries stood for, then clear.
        self.retired.clear();
        self.mshr_d.retire_into(u64::MAX, &mut self.retired);
        for &done in &self.retired {
            self.l1d.fill(done);
        }
        self.mshr_d.clear();
    }
}

/// A full-hierarchy checkpoint (the paper's Flex-point / Live-point /
/// memory-hierarchy-state family, §7). Compares bit-for-bit — the
/// equivalence oracle of the batched warm path.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HierarchySnapshot {
    l1i: crate::cache::CacheSnapshot,
    l1d: crate::cache::CacheSnapshot,
    llc: crate::cache::CacheSnapshot,
}

impl HierarchySnapshot {
    /// Live-points-style storage footprint of the checkpoint.
    pub fn storage_bytes(&self) -> u64 {
        self.l1i.storage_bytes() + self.l1d.storage_bytes() + self.llc.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::Scale;

    fn machine() -> MachineConfig {
        MachineConfig::for_scale(Scale::tiny())
    }

    #[test]
    fn cold_access_goes_to_memory_then_llc_then_l1() {
        let mut h = Hierarchy::new(&machine());
        let pc = Pc(0x400);
        assert_eq!(h.access_data(pc, LineAddr(5), 0), MemLevel::Memory);
        // In-flight: delayed hit.
        assert_eq!(h.access_data(pc, LineAddr(5), 1), MemLevel::Mshr);
        // After the MSHR latency the L1 fill completed.
        let lat = machine().hierarchy.mshr_latency_accesses;
        assert_eq!(h.access_data(pc, LineAddr(5), lat + 1), MemLevel::L1);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        // Explicit geometry: 4 KiB L1s, 64 KiB LLC (16× larger).
        let cfg = MachineConfig {
            hierarchy: crate::config::HierarchyConfig {
                l1i: crate::CacheConfig::new(4 << 10, 2),
                l1d: crate::CacheConfig::new(4 << 10, 2),
                llc: crate::CacheConfig::new(64 << 10, 8),
                l1d_mshrs: 8,
                mshr_latency_accesses: 4,
            },
            prefetch: false,
        };
        let mut h = Hierarchy::new(&cfg);
        let pc = Pc(0x400);
        let l1_lines = h.l1d().config().lines(); // 64
        h.access_data(pc, LineAddr(7), 0);
        h.drain_mshrs();
        // Thrash the L1 with 4× its capacity in distinct lines (all within
        // the LLC), spaced far apart in time so every fill completes.
        for i in 0..l1_lines * 4 {
            h.access_data(pc, LineAddr(1_000 + i), 10 + i * 10);
        }
        h.drain_mshrs();
        let now = 10 + l1_lines * 40 + 1;
        let level = h.access_data(pc, LineAddr(7), now);
        assert_eq!(level, MemLevel::Llc, "line 7 should have fallen to LLC");
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::new(&machine());
        let pc = Pc(0x400);
        h.access_data(pc, LineAddr(1), 0); // memory
        h.access_data(pc, LineAddr(1), 1); // mshr
        h.drain_mshrs();
        h.access_data(pc, LineAddr(1), 200); // l1
        let s = h.stats();
        assert_eq!(s.memory, 1);
        assert_eq!(s.mshr_hits, 1);
        assert_eq!(s.l1d_hits, 1);
        assert_eq!(s.data_accesses(), 3);
    }

    #[test]
    fn instruction_side_warms_quickly() {
        let mut h = Hierarchy::new(&machine());
        for _ in 0..3 {
            for pc in 0..64u64 {
                h.access_instr(Pc(0x1000 + pc * 4));
            }
        }
        // 64 PCs × 4 B = 4 lines; only the first round misses.
        assert_eq!(h.stats().l1i_misses, 4);
    }

    #[test]
    fn prefetcher_fills_ahead_of_streams() {
        let cfg = machine().with_prefetch(true);
        let mut h = Hierarchy::new(&cfg);
        let pc = Pc(0x777);
        // A long unit-stride miss stream in line space.
        let mut mem_misses = 0;
        for i in 0..64u64 {
            let line = LineAddr(10_000 + i);
            if h.access_data(pc, line, i * 100) == MemLevel::Memory {
                mem_misses += 1;
            }
        }
        assert!(h.stats().prefetches_issued > 0);
        // With degree-2 prefetch, far fewer than 64 memory misses remain.
        assert!(
            mem_misses < 40,
            "prefetcher ineffective: {mem_misses} memory misses"
        );
    }

    #[test]
    fn fill_data_transplants_state() {
        let mut h = Hierarchy::new(&machine());
        h.fill_data(LineAddr(42));
        assert_eq!(h.access_data(Pc(1), LineAddr(42), 0), MemLevel::L1);
    }

    #[test]
    fn drain_mshrs_completes_fills() {
        let mut h = Hierarchy::new(&machine());
        h.access_data(Pc(1), LineAddr(9), 0);
        h.drain_mshrs();
        assert_eq!(h.access_data(Pc(1), LineAddr(9), 1), MemLevel::L1);
    }

    #[test]
    fn warm_slice_matches_per_access_calls() {
        use delorean_trace::{mix64, Addr, MemAccess};
        let batch: Vec<MemAccess> = (0..4_000u64)
            .map(|i| MemAccess {
                index: i,
                icount: i * 3,
                pc: Pc(0x400 + (mix64(7, i) % 64) * 4),
                addr: Addr((mix64(11, i) % 4096) * 64),
                kind: delorean_trace::AccessKind::Load,
            })
            .collect();
        let mut per_access = Hierarchy::new(&machine());
        let mut batched = Hierarchy::new(&machine());
        for a in &batch {
            per_access.access_data(a.pc, a.line(), a.index);
        }
        for chunk in batch.chunks(17) {
            batched.warm_slice(chunk);
        }
        assert_eq!(per_access.stats(), batched.stats());
        assert_eq!(per_access.snapshot(), batched.snapshot());
    }

    #[test]
    fn warm_slice_survives_reset_stats() {
        use delorean_trace::{spec_workload, WorkloadExt};
        let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let mut h = Hierarchy::new(&machine());
        h.warm_range(&w, 0..5_000);
        // Zeroing the counters mid-run must not desync the adaptive
        // lookahead marker (a stale marker underflows the batch delta).
        h.reset_stats();
        h.warm_range(&w, 5_000..10_000);
        let mut oracle = Hierarchy::new(&machine());
        w.for_each_access(0..5_000, |a| {
            oracle.access_data(a.pc, a.line(), a.index);
        });
        oracle.reset_stats();
        w.for_each_access(5_000..10_000, |a| {
            oracle.access_data(a.pc, a.line(), a.index);
        });
        assert_eq!(h.stats(), oracle.stats());
        assert_eq!(h.snapshot(), oracle.snapshot());
    }

    #[test]
    fn state_digest_tracks_behavioural_state() {
        use delorean_trace::spec_workload;
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let mut a = Hierarchy::new(&machine());
        let mut b = Hierarchy::new(&machine());
        assert_eq!(a.state_digest(), b.state_digest(), "cold == cold");
        a.warm_range(&w, 0..4_000);
        b.warm_range(&w, 0..4_000);
        assert_eq!(a.state_digest(), b.state_digest(), "same history");
        assert_ne!(
            a.state_digest(),
            Hierarchy::new(&machine()).state_digest(),
            "warm != cold"
        );
        // A single access can be behaviourally invisible (a hit on the
        // MRU line of its set), so diverge by a span, not one access.
        b.warm_range(&w, 4_000..4_256);
        assert_ne!(a.state_digest(), b.state_digest(), "histories diverged");
        // Statistics are not architectural state: resetting them leaves
        // the digest alone.
        let d = a.state_digest();
        a.reset_stats();
        assert_eq!(a.state_digest(), d);
    }

    #[test]
    fn directed_window_reproduces_the_warm_chain_digest() {
        // The speculative warm lane's entire premise, at hierarchy level:
        // for an LRU machine, the live state at access position B is a
        // function of a bounded window of recent history, so warming
        // [B-L, B) from *cold* converges to the same live-state digest as
        // warming the full prefix [0, B) — while the raw snapshots differ
        // in dead bytes (absolute stamps).
        use delorean_trace::spec_workload;
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let boundary = 60_000u64;
        let window = 30_000u64;
        let mut chain = Hierarchy::new(&machine());
        chain.warm_range(&w, 0..boundary);
        let mut proxy = Hierarchy::new(&machine());
        proxy.warm_range(&w, boundary - window..boundary);
        assert_eq!(
            chain.state_digest(),
            proxy.state_digest(),
            "directed window failed to converge to the chain's live state"
        );
        // Equal digests ⇒ identical subsequent behaviour.
        let before = (chain.stats().l1d_hits, chain.stats().memory);
        chain.reset_stats();
        proxy.reset_stats();
        chain.warm_range(&w, boundary..boundary + 5_000);
        proxy.warm_range(&w, boundary..boundary + 5_000);
        assert_eq!(chain.stats(), proxy.stats());
        assert_eq!(chain.state_digest(), proxy.state_digest());
        let _ = before;
    }

    #[test]
    fn copy_state_from_is_fork_without_allocation() {
        use delorean_trace::spec_workload;
        let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let mut src = Hierarchy::new(&machine());
        src.warm_range(&w, 0..8_000);
        let mut dst = Hierarchy::new(&machine());
        dst.warm_range(&w, 0..100); // dirty destination
        dst.copy_state_from(&src);
        assert_eq!(dst.state_digest(), src.state_digest());
        assert_eq!(dst.stats(), src.stats());
        dst.warm_range(&w, 8_000..12_000);
        let mut fork = src.fork();
        fork.warm_range(&w, 8_000..12_000);
        assert_eq!(dst.snapshot(), fork.snapshot());
        assert_eq!(dst.stats(), fork.stats());
    }

    #[test]
    fn warm_range_streams_the_workload() {
        use delorean_trace::{spec_workload, WorkloadExt};
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let mut streamed = Hierarchy::new(&machine());
        streamed.warm_range(&w, 100..6_000);
        let mut looped = Hierarchy::new(&machine());
        w.for_each_access(100..6_000, |a| {
            looped.access_data(a.pc, a.line(), a.index);
        });
        assert_eq!(streamed.stats(), looped.stats());
        assert_eq!(streamed.snapshot(), looped.snapshot());
    }
}
