//! Property tests: the set-associative cache against the exact
//! stack-distance oracle, and policy invariants under random traffic.
//!
//! Cases are generated from the workspace's own deterministic counter
//! RNG (`mix64`) instead of proptest — the registry is unreachable in
//! this build environment, and seeded enumeration keeps failures exactly
//! reproducible by case index.

use delorean_cache::{Cache, CacheConfig, ReplacementPolicy};
use delorean_statmodel::exact::ExactStackProcessor;
use delorean_trace::{mix64, LineAddr};

/// Deterministic pseudo-random access stream for one test case.
fn rand_stream(seed: u64, case: u64, max_len: u64, domain: u64) -> Vec<u64> {
    let len = 1 + mix64(seed, case) % max_len;
    (0..len).map(|i| mix64(seed ^ case, i) % domain).collect()
}

/// A fully-associative LRU cache (1 set) must agree exactly with Mattson
/// stack distances: hit iff stack distance < capacity.
fn fully_assoc_lru(lines: u64) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 64 * lines,
        ways: lines as u32,
        line_bytes: 64,
        replacement: ReplacementPolicy::Lru,
    })
}

#[test]
fn lru_matches_stack_distance_oracle() {
    for case in 0..64u64 {
        let stream = rand_stream(0x04ac1e, case, 400, 48);
        let capacity = [2u64, 4, 8, 16, 32][(case % 5) as usize];
        let mut cache = fully_assoc_lru(capacity);
        let mut oracle = ExactStackProcessor::new();
        for &l in &stream {
            let line = LineAddr(l);
            let cache_hit = cache.access(line).is_hit();
            let oracle_hit = matches!(oracle.access(line), Some(sd) if sd < capacity);
            assert_eq!(
                cache_hit, oracle_hit,
                "case {case} line {l} capacity {capacity}"
            );
        }
    }
}

#[test]
fn any_policy_hits_after_immediate_refill() {
    let policies = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::PLru,
        ReplacementPolicy::Nmru,
    ];
    for case in 0..64u64 {
        let stream = rand_stream(0x4ef111, case, 200, 1000);
        let policy = policies[(case % policies.len() as u64) as usize];
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            line_bytes: 64,
            replacement: policy,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
            // Back-to-back re-access must always hit, under every policy.
            assert!(
                cache.access(LineAddr(l)).is_hit(),
                "case {case} policy {policy:?} line {l}"
            );
        }
    }
}

#[test]
fn probe_never_mutates() {
    for case in 0..64u64 {
        let stream = rand_stream(0x94abe, case, 200, 256);
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 32,
            ways: 2,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
        }
        let before: Vec<bool> = (0..256).map(|l| cache.probe(LineAddr(l))).collect();
        // Many probes later, residency is unchanged.
        for _ in 0..3 {
            for l in 0..256u64 {
                cache.probe(LineAddr(l));
            }
        }
        let after: Vec<bool> = (0..256).map(|l| cache.probe(LineAddr(l))).collect();
        assert_eq!(before, after, "case {case}");
    }
}

#[test]
fn valid_lines_never_exceed_capacity() {
    for case in 0..64u64 {
        let stream = rand_stream(0xca95, case, 500, 100_000);
        let ways = [1u32, 2, 4, 8][(case % 4) as usize];
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 16 * ways as u64,
            ways,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
            assert!(cache.warm_fraction() <= 1.0, "case {case}");
        }
        // Residency check: everything probed as present must map to
        // distinct (set, way) slots — at most sets × ways lines.
        let resident = stream
            .iter()
            .copied()
            .filter(|&l| cache.probe(LineAddr(l)))
            .collect::<delorean_trace::FlatSet<u64>>();
        assert!(resident.len() as u64 <= 16 * ways as u64, "case {case}");
    }
}

/// Deterministic regression: a working set exactly matching capacity stays
/// resident under LRU regardless of associativity, when aligned.
#[test]
fn aligned_working_set_fits() {
    for ways in [1u32, 2, 4] {
        let sets = 16u64;
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * sets * ways as u64,
            ways,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        let lines: Vec<LineAddr> = (0..sets * ways as u64).map(LineAddr).collect();
        for &l in &lines {
            cache.access(l);
        }
        for round in 0..5 {
            for &l in &lines {
                assert!(
                    cache.access(l).is_hit(),
                    "ways={ways} round={round} line={l:?}"
                );
            }
        }
    }
}
