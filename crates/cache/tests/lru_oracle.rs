//! Property tests: the set-associative cache against the exact
//! stack-distance oracle, and policy invariants under random traffic.

use delorean_cache::{Cache, CacheConfig, ReplacementPolicy};
use delorean_statmodel::exact::ExactStackProcessor;
use delorean_trace::LineAddr;
use proptest::prelude::*;

/// A fully-associative LRU cache (1 set) must agree exactly with Mattson
/// stack distances: hit iff stack distance < capacity.
fn fully_assoc_lru(lines: u64) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 64 * lines,
        ways: lines as u32,
        line_bytes: 64,
        replacement: ReplacementPolicy::Lru,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_stack_distance_oracle(
        stream in prop::collection::vec(0u64..48, 1..400),
        capacity in prop::sample::select(vec![2u64, 4, 8, 16, 32]),
    ) {
        let mut cache = fully_assoc_lru(capacity);
        let mut oracle = ExactStackProcessor::new();
        for &l in &stream {
            let line = LineAddr(l);
            let cache_hit = cache.access(line).is_hit();
            let oracle_hit = matches!(oracle.access(line), Some(sd) if sd < capacity);
            prop_assert_eq!(cache_hit, oracle_hit, "line {} capacity {}", l, capacity);
        }
    }

    #[test]
    fn any_policy_hits_after_immediate_refill(
        stream in prop::collection::vec(0u64..1000, 1..200),
        policy in prop::sample::select(vec![
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::PLru,
            ReplacementPolicy::Nmru,
        ]),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            line_bytes: 64,
            replacement: policy,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
            // Back-to-back re-access must always hit, under every policy.
            prop_assert!(cache.access(LineAddr(l)).is_hit());
        }
    }

    #[test]
    fn probe_never_mutates(
        stream in prop::collection::vec(0u64..256, 1..200),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 32,
            ways: 2,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
        }
        let before: Vec<bool> = (0..256).map(|l| cache.probe(LineAddr(l))).collect();
        // Many probes later, residency is unchanged.
        for _ in 0..3 {
            for l in 0..256u64 {
                cache.probe(LineAddr(l));
            }
        }
        let after: Vec<bool> = (0..256).map(|l| cache.probe(LineAddr(l))).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn valid_lines_never_exceed_capacity(
        stream in prop::collection::vec(0u64..100_000, 1..500),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 16 * ways as u64,
            ways,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        for &l in &stream {
            cache.access(LineAddr(l));
            prop_assert!(cache.warm_fraction() <= 1.0);
        }
        // Residency check: everything probed as present must map to
        // distinct (set, way) slots — at most sets × ways lines.
        let resident = stream
            .iter()
            .filter(|&&l| cache.probe(LineAddr(l)))
            .collect::<std::collections::HashSet<_>>();
        prop_assert!(resident.len() as u64 <= 16 * ways as u64);
    }
}

/// Deterministic regression: a working set exactly matching capacity stays
/// resident under LRU regardless of associativity, when aligned.
#[test]
fn aligned_working_set_fits() {
    for ways in [1u32, 2, 4] {
        let sets = 16u64;
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * sets * ways as u64,
            ways,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        });
        let lines: Vec<LineAddr> = (0..sets * ways as u64).map(LineAddr).collect();
        for &l in &lines {
            cache.access(l);
        }
        for round in 0..5 {
            for &l in &lines {
                assert!(
                    cache.access(l).is_hit(),
                    "ways={ways} round={round} line={l:?}"
                );
            }
        }
    }
}
