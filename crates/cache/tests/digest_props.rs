//! Property tests for [`Hierarchy::state_digest`], the commit oracle of
//! the PR 8 speculative warm lane.
//!
//! The digest folds only *behaviorally live* state (canonicalized
//! recency order, replacement bits, MSHR contents, prefetcher streams),
//! while [`Hierarchy::snapshot`] captures raw arrays — absolute LRU
//! stamps included. Over arbitrary states the two therefore measure
//! different things; over the population speculation actually produces
//! (hierarchies replayed from cold, snapshotted with drained MSHRs,
//! compared at equal access counts) the equivalence is exact, and this
//! suite pins it:
//!
//! * same replayed history  ⇒ equal digests AND equal snapshots;
//! * diverged history       ⇒ unequal digests AND unequal snapshots;
//! * **behavioral soundness**, the property the reconciler relies on:
//!   digest-equal states driven by the same suffix stay digest-equal
//!   and produce identical statistics deltas.
//!
//! The grid covers every replacement policy × MSHR shape × prefetcher
//! on/off, because each knob routes different bits into the digest.

use delorean_cache::{
    CacheConfig, Hierarchy, HierarchyConfig, MachineConfig, ReplacementPolicy, StridePrefetcher,
};
use delorean_trace::{LineAddr, Pc};

/// splitmix64 — the workspace's deterministic stand-in for a test RNG.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const POLICIES: [ReplacementPolicy; 6] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
    ReplacementPolicy::PLru,
    ReplacementPolicy::Nmru,
    ReplacementPolicy::Srrip,
];

/// MSHR shapes: (entries, fill latency in accesses).
const MSHR_SHAPES: [(u32, u64); 3] = [(1, 16), (8, 64), (32, 4)];

fn machine(policy: ReplacementPolicy, mshrs: (u32, u64), prefetch: bool) -> MachineConfig {
    let cache = |size: u64, ways: u32| CacheConfig::new(size, ways).with_replacement(policy);
    MachineConfig {
        hierarchy: HierarchyConfig {
            l1i: cache(4 * 1024, 2),
            l1d: cache(4 * 1024, 2),
            llc: cache(32 * 1024, 4),
            l1d_mshrs: mshrs.0,
            mshr_latency_accesses: mshrs.1,
        },
        prefetch,
    }
}

/// Replay `len` pseudo-random accesses (working set ≈ 4× the LLC) from
/// cold, seeded by `seed`.
fn replay(m: &MachineConfig, seed: u64, len: u64) -> Hierarchy {
    let mut h = Hierarchy::new(m);
    let lines = m.hierarchy.llc.lines() * 4;
    for k in 0..len {
        let r = mix(seed.wrapping_mul(0x0100_0000_01b3).wrapping_add(k));
        // A few hot PCs striding plus a random tail, so prefetcher
        // streams form and every replacement policy exercises evictions.
        let (pc, line) = if r.is_multiple_of(4) {
            (Pc(0x40 + (r >> 8) % 4), LineAddr((r >> 16) % lines))
        } else {
            let pc = Pc(0x10 + (r >> 4) % 3);
            (pc, LineAddr((k.wrapping_mul(3 + pc.0)) % lines))
        };
        h.access_data(pc, line, k);
    }
    h
}

#[test]
fn digest_equality_matches_snapshot_equality_across_the_grid() {
    for policy in POLICIES {
        for mshrs in MSHR_SHAPES {
            for prefetch in [false, true] {
                let m = machine(policy, mshrs, prefetch);
                let cell = format!("{policy:?}/mshr{}x{}/pf={prefetch}", mshrs.0, mshrs.1);

                // Same history ⇒ both notions agree on "equal".
                let mut a = replay(&m, 7, 4096);
                let mut b = replay(&m, 7, 4096);
                b.reset_stats(); // statistics are outside both notions
                assert_eq!(a.state_digest(), b.state_digest(), "{cell}: digest");
                assert_eq!(a.snapshot(), b.snapshot(), "{cell}: snapshot");
                // snapshot() drained the MSHRs in place; digests must
                // still agree afterwards.
                assert_eq!(a.state_digest(), b.state_digest(), "{cell}: drained");

                // Diverged history ⇒ both notions agree on "unequal".
                let mut c = replay(&m, 8, 4096);
                assert_ne!(a.state_digest(), c.state_digest(), "{cell}: digest ≠");
                assert_ne!(a.snapshot(), c.snapshot(), "{cell}: snapshot ≠");
            }
        }
    }
}

#[test]
fn digest_equal_states_are_behaviorally_identical() {
    // The reconciler's soundness bet: a digest match means the two
    // states cannot be told apart by any future access sequence. Drive
    // digest-equal pairs through a common suffix and require identical
    // hit/miss deltas and digests at every policy/shape/prefetch cell.
    for policy in POLICIES {
        for mshrs in MSHR_SHAPES {
            for prefetch in [false, true] {
                let m = machine(policy, mshrs, prefetch);
                let cell = format!("{policy:?}/mshr{}x{}/pf={prefetch}", mshrs.0, mshrs.1);
                let mut a = replay(&m, 21, 3000);
                let mut b = replay(&m, 21, 3000);
                assert_eq!(a.state_digest(), b.state_digest(), "{cell}: precondition");
                // Compare suffix-only statistics: reset both counters
                // (a digest-neutral operation) and require identical
                // totals after the common suffix.
                a.reset_stats();
                b.reset_stats();
                let lines = m.hierarchy.llc.lines() * 4;
                for k in 0..2000u64 {
                    let r = mix(0xabc ^ k);
                    let pc = Pc(0x99 + r % 5);
                    let line = LineAddr((r >> 8) % lines);
                    let la = a.access_data(pc, line, 3000 + k);
                    let lb = b.access_data(pc, line, 3000 + k);
                    assert_eq!(la, lb, "{cell}: outcome diverged at suffix access {k}");
                }
                assert_eq!(a.state_digest(), b.state_digest(), "{cell}: post-suffix");
                assert_eq!(a.stats(), b.stats(), "{cell}: suffix stats");
            }
        }
    }
}

#[test]
fn prefetcher_tick_offsets_never_split_behaviorally_equal_states() {
    // The canonicalization the speculative warm lane relies on: a
    // prefetcher replayed from cold (window proxy) carries a different
    // absolute trigger count than the live chain's, but if it reproduces
    // the same streams in the same recency order it must digest equal —
    // and the digest promise (identical future behavior) must hold.
    for seed in [3u64, 11, 42, 1234] {
        let mut a = StridePrefetcher::paper_default();
        let mut b = StridePrefetcher::paper_default();
        // Offset b's trigger clock with junk streams it then forgets.
        for k in 0..(seed % 97 + 1) {
            b.on_trigger(Pc(0xffff + k), LineAddr(k));
        }
        b.reset();
        // Common history: a few striding PCs with occasional breaks,
        // enough volume to roll the 8-entry table over repeatedly.
        for k in 0..500u64 {
            let r = mix(seed ^ k);
            let pc = Pc(1 + r % 5);
            let line = LineAddr(if r.is_multiple_of(7) {
                r % 1000
            } else {
                k.wrapping_mul(2 + pc.0) % 1000
            });
            let ra = a.on_trigger(pc, line);
            let rb = b.on_trigger(pc, line);
            assert_eq!(ra, rb, "seed {seed}: behavior diverged at trigger {k}");
        }
        assert_eq!(
            a.state_digest(9),
            b.state_digest(9),
            "seed {seed}: tick offset split the digest"
        );
    }
}

#[test]
fn prefetcher_confidence_saturation_never_splits_armed_streams() {
    // Confidence 2 and confidence 40 predict identically (armed is
    // armed; a stride break resets both to 1), so they must digest
    // equal — while sub-threshold differences (0 vs 1) must not.
    let mut a = StridePrefetcher::paper_default();
    let mut b = StridePrefetcher::paper_default();
    for line in [20u64, 30, 40] {
        a.on_trigger(Pc(1), LineAddr(line));
    }
    for line in (0..=40u64).step_by(10) {
        b.on_trigger(Pc(1), LineAddr(line));
    }
    assert_eq!(a.state_digest(1), b.state_digest(1));
    // Stride break: both reset to confidence 1 and stay equal.
    assert_eq!(
        a.on_trigger(Pc(1), LineAddr(1000)),
        b.on_trigger(Pc(1), LineAddr(1000))
    );
    assert_eq!(a.state_digest(1), b.state_digest(1));
}
