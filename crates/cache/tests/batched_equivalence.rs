//! Property tests pinning the batched warm path to the per-access path.
//!
//! `Hierarchy::warm_slice` must be **bit-identical** to driving the same
//! accesses one at a time through `Hierarchy::access_data`: identical
//! final microarchitectural state (`HierarchySnapshot` compares
//! bit-for-bit) and identical statistics counters, across machine
//! geometries, replacement policies, MSHR capacities and latencies
//! (including streams that saturate the file into the `Full` outcome),
//! prefetcher on/off, arbitrary batch-boundary splits, and region
//! boundaries that `drain_mshrs` the file mid-stream.

use delorean_cache::{
    CacheConfig, Hierarchy, HierarchyConfig, MachineConfig, MshrFile, MshrOutcome,
    ReplacementPolicy,
};
use delorean_trace::{mix64, AccessKind, Addr, MemAccess, Pc};

/// A small machine with explicit MSHR shape and LLC policy: 4 KiB 2-way
/// L1s over a 32 KiB 8-way LLC keeps set pressure (and therefore MSHR
/// churn, evictions and replacement decisions) high at test sizes.
fn machine(
    mshrs: u32,
    latency: u64,
    llc_policy: ReplacementPolicy,
    prefetch: bool,
) -> MachineConfig {
    MachineConfig {
        hierarchy: HierarchyConfig {
            l1i: CacheConfig::new(4 << 10, 2),
            l1d: CacheConfig::new(4 << 10, 2),
            llc: CacheConfig::new(32 << 10, 8).with_replacement(llc_policy),
            l1d_mshrs: mshrs,
            mshr_latency_accesses: latency,
        },
        prefetch,
    }
}

/// Deterministic access stream: `line_space` distinct lines, mixed
/// loads/stores, PCs drawn from a small pool (so the prefetcher's per-PC
/// stride detectors engage), with an occasional unit-stride burst to give
/// the stride prefetcher something real to train on.
fn stream(seed: u64, n: u64, line_space: u64) -> Vec<MemAccess> {
    (0..n)
        .map(|i| {
            let r = mix64(seed, i);
            // Every 4th access is a dedicated streaming PC marching
            // through fresh far lines at unit stride: its consecutive
            // memory misses have a stable stride, which is what arms the
            // per-PC stride detector.
            let (pc, line) = if i % 4 == 3 {
                (Pc(0x9990), (1 << 20) + (seed << 14) + i / 4)
            } else {
                (Pc(0x400 + (r >> 32) % 16 * 4), r % line_space)
            };
            MemAccess {
                index: i,
                icount: i * 3,
                pc,
                addr: Addr(line * 64),
                kind: if r.is_multiple_of(3) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            }
        })
        .collect()
}

/// Drive `accesses` through a fresh per-access hierarchy and a fresh
/// batched hierarchy (splitting at `batch` boundaries, draining MSHRs at
/// each index in `clears`), then assert snapshots and every statistics
/// block agree bit-for-bit.
fn assert_equivalent(cfg: &MachineConfig, accesses: &[MemAccess], batch: usize, clears: &[u64]) {
    let mut per_access = Hierarchy::new(cfg);
    let mut batched = Hierarchy::new(cfg);

    for a in accesses {
        if clears.contains(&a.index) {
            per_access.drain_mshrs();
        }
        per_access.access_data(a.pc, a.line(), a.index);
    }

    // Split the stream at the drain boundaries, then feed each span in
    // `batch`-sized slices — the batched path must honor region
    // boundaries that fall mid-batch.
    let mut start = 0usize;
    for (i, a) in accesses.iter().enumerate() {
        if clears.contains(&a.index) {
            for chunk in accesses[start..i].chunks(batch.max(1)) {
                batched.warm_slice(chunk);
            }
            batched.drain_mshrs();
            start = i;
        }
    }
    for chunk in accesses[start..].chunks(batch.max(1)) {
        batched.warm_slice(chunk);
    }

    assert_eq!(
        per_access.stats(),
        batched.stats(),
        "hierarchy counters diverged (batch={batch}, clears={clears:?})"
    );
    assert_eq!(
        per_access.l1d().stats(),
        batched.l1d().stats(),
        "L1-D counters diverged"
    );
    assert_eq!(
        per_access.llc().stats(),
        batched.llc().stats(),
        "LLC counters diverged"
    );
    assert_eq!(
        per_access.snapshot(),
        batched.snapshot(),
        "snapshots diverged (batch={batch}, clears={clears:?})"
    );
}

#[test]
fn batch_splits_never_change_the_outcome() {
    let cfg = machine(8, 64, ReplacementPolicy::Lru, false);
    let accesses = stream(1, 6_000, 900);
    for batch in [1usize, 2, 7, 64, 1024, 6_000] {
        assert_equivalent(&cfg, &accesses, batch, &[]);
    }
}

#[test]
fn equivalence_across_replacement_policies() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::PLru,
        ReplacementPolicy::Nmru,
        ReplacementPolicy::Srrip,
    ] {
        let cfg = machine(8, 64, policy, false);
        let accesses = stream(2, 4_000, 700);
        assert_equivalent(&cfg, &accesses, 128, &[]);
    }
}

#[test]
fn equivalence_across_mshr_shapes_including_full() {
    // Capacity 1 with a long latency saturates instantly (the `Full`
    // outcome on nearly every miss); capacity 32 with zero latency makes
    // every fill visible to the next access.
    for (mshrs, latency) in [
        (1u32, 500u64),
        (1, 0),
        (2, 64),
        (8, 1),
        (32, 0),
        (8, 10_000),
    ] {
        let cfg = machine(mshrs, latency, ReplacementPolicy::Lru, false);
        let accesses = stream(3 + u64::from(mshrs), 5_000, 1_200);
        assert_equivalent(&cfg, &accesses, 256, &[]);
    }
}

#[test]
fn full_outcome_actually_occurs_in_the_saturating_shape() {
    // Guard the previous test's premise: a 1-entry file with latency
    // longer than the stream really does hand out `Full`.
    let mut m = MshrFile::new(1, 500);
    assert_eq!(
        m.on_miss(delorean_trace::LineAddr(1), 0),
        MshrOutcome::Allocated
    );
    assert_eq!(m.on_miss(delorean_trace::LineAddr(2), 1), MshrOutcome::Full);
    assert_eq!(
        m.on_miss(delorean_trace::LineAddr(1), 2),
        MshrOutcome::DelayedHit
    );
}

#[test]
fn equivalence_with_prefetcher_enabled() {
    for seed in [5u64, 6, 7] {
        let cfg = machine(8, 64, ReplacementPolicy::Lru, true);
        let accesses = stream(seed, 5_000, 600);
        assert_equivalent(&cfg, &accesses, 512, &[]);
        let h = {
            let mut h = Hierarchy::new(&cfg);
            h.warm_slice(&accesses);
            h
        };
        // The stream's striding phases must actually engage the
        // prefetcher, or this test exercises nothing.
        assert!(h.stats().prefetches_issued > 0, "prefetcher never fired");
    }
}

#[test]
fn region_boundary_drains_are_honored_mid_batch() {
    let cfg = machine(4, 64, ReplacementPolicy::Lru, false);
    let accesses = stream(8, 6_000, 800);
    assert_equivalent(&cfg, &accesses, 1024, &[1_500, 1_501, 4_000]);
}

#[test]
fn warm_range_equals_per_access_over_a_real_workload() {
    use delorean_trace::{spec_workload, Scale, WorkloadExt};
    for name in ["hmmer", "mcf", "povray"] {
        let w = spec_workload(name, Scale::tiny(), 1).unwrap();
        let cfg = MachineConfig::for_scale(Scale::tiny());
        let mut streamed = Hierarchy::new(&cfg);
        streamed.warm_range(&w, 37..12_037);
        let mut looped = Hierarchy::new(&cfg);
        w.for_each_access(37..12_037, |a| {
            looped.access_data(a.pc, a.line(), a.index);
        });
        assert_eq!(streamed.stats(), looped.stats(), "{name} counters diverged");
        assert_eq!(
            streamed.snapshot(),
            looped.snapshot(),
            "{name} snapshots diverged"
        );
    }
}

#[test]
fn checkpoint_restore_equalizes_both_paths() {
    // A snapshot taken on the batched path must restore onto a hierarchy
    // driven per-access (and vice versa) with identical behavior after.
    let cfg = machine(8, 64, ReplacementPolicy::PLru, false);
    let accesses = stream(9, 3_000, 500);
    let tail = stream(10, 1_000, 500);

    let mut batched = Hierarchy::new(&cfg);
    batched.warm_slice(&accesses);
    let snap = batched.snapshot();

    let mut restored = Hierarchy::new(&cfg);
    restored.restore(&snap);
    for a in &tail {
        let via_restore = restored.access_data(a.pc, a.line(), a.index);
        let via_batched = batched.access_data(a.pc, a.line(), a.index);
        assert_eq!(
            via_restore, via_batched,
            "post-restore divergence at {}",
            a.index
        );
    }
}
