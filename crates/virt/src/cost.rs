//! The host cost model.

use serde::{Deserialize, Serialize};

/// Kinds of per-instruction work, each with its own execution rate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkKind {
    /// Native execution on the host.
    Native,
    /// Virtualized fast-forwarding (KVM): near-native.
    Vff,
    /// Functional simulation (gem5 "atomic" CPU): no timing, but every
    /// instruction and memory access is interpreted.
    Functional,
    /// Detailed cycle-level simulation (gem5 O3 CPU).
    Detailed,
}

/// Host execution-cost constants, in MIPS and seconds.
///
/// These stand in for the dual-socket Xeon E5520 the paper measures on.
/// Every simulated mechanism charges a [`HostClock`](crate::HostClock)
/// through this model; reported speeds are `instructions / seconds`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Native execution rate (≈ one IPC at 2.26 GHz).
    pub native_mips: f64,
    /// KVM fast-forward rate (near-native; guest overhead ~20%).
    pub vff_mips: f64,
    /// Functional simulation rate (the paper reports SMARTS at 1.3 MIPS,
    /// which functional warming dominates).
    pub functional_mips: f64,
    /// Detailed simulation rate.
    pub detailed_mips: f64,
    /// Cost of one watchpoint trap (page fault + signal delivery +
    /// re-protection).
    pub trap_seconds: f64,
    /// Per-region cost of handing state between pipeline passes (the
    /// paper's OS pipes; checkpoint transfer between KVM and gem5).
    pub transfer_seconds: f64,
}

impl CostModel {
    /// Constants modeling the paper's evaluation host.
    ///
    /// The trap cost covers the full userspace watchpoint round trip on
    /// 2009-era hardware: fault, kernel entry, signal delivery, distance
    /// bookkeeping and page re-protection (two `mprotect` calls + TLB
    /// shootdown) — tens of microseconds end to end.
    pub fn paper_host() -> Self {
        CostModel {
            native_mips: 2260.0,
            vff_mips: 1800.0,
            functional_mips: 1.4,
            detailed_mips: 0.2,
            trap_seconds: 1.8e-5,
            transfer_seconds: 2.0e-3,
        }
    }

    /// Rate for a work kind, in MIPS.
    pub fn mips_for(&self, kind: WorkKind) -> f64 {
        match kind {
            WorkKind::Native => self.native_mips,
            WorkKind::Vff => self.vff_mips,
            WorkKind::Functional => self.functional_mips,
            WorkKind::Detailed => self.detailed_mips,
        }
    }

    /// Seconds to execute `instrs` instructions as `kind` work.
    pub fn instr_seconds(&self, kind: WorkKind, instrs: u64) -> f64 {
        instrs as f64 / (self.mips_for(kind) * 1e6)
    }

    /// Validate that all rates are positive and ordered sensibly.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            self.native_mips,
            self.vff_mips,
            self.functional_mips,
            self.detailed_mips,
        ];
        if rates.iter().any(|&r| r <= 0.0) {
            return Err("all rates must be positive".into());
        }
        if self.trap_seconds < 0.0 || self.transfer_seconds < 0.0 {
            return Err("costs must be non-negative".into());
        }
        if self.detailed_mips > self.functional_mips
            || self.functional_mips > self.vff_mips
            || self.vff_mips > self.native_mips
        {
            return Err("rates must satisfy detailed ≤ functional ≤ vff ≤ native".into());
        }
        Ok(())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_host()
    }
}

/// Express a (instructions, seconds) pair as MIPS; 0 for zero time.
pub fn mips(instructions: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        instructions as f64 / seconds / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_host_is_valid_and_ordered() {
        let c = CostModel::paper_host();
        c.validate().unwrap();
        assert!(c.mips_for(WorkKind::Native) > c.mips_for(WorkKind::Vff));
        assert!(c.mips_for(WorkKind::Vff) > c.mips_for(WorkKind::Functional));
        assert!(c.mips_for(WorkKind::Functional) > c.mips_for(WorkKind::Detailed));
    }

    #[test]
    fn instr_seconds_scales_linearly() {
        let c = CostModel::paper_host();
        let one = c.instr_seconds(WorkKind::Functional, 1_000_000);
        let ten = c.instr_seconds(WorkKind::Functional, 10_000_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
        // 1M instructions at 1.4 MIPS ≈ 0.71 s.
        assert!((one - 1.0 / 1.4).abs() < 1e-9);
    }

    #[test]
    fn mips_helper() {
        assert!((mips(126_000_000, 1.0) - 126.0).abs() < 1e-9);
        assert_eq!(mips(100, 0.0), 0.0);
    }

    #[test]
    fn validation_catches_inversions() {
        let mut c = CostModel::paper_host();
        c.functional_mips = 10_000.0;
        assert!(c.validate().is_err());
        let mut d = CostModel::paper_host();
        d.trap_seconds = -1.0;
        assert!(d.validate().is_err());
        let mut e = CostModel::paper_host();
        e.detailed_mips = 0.0;
        assert!(e.validate().is_err());
    }
}
