//! Host-time accounting: per-pass clocks and pipelined run costs.

use serde::{Deserialize, Serialize};

/// Accumulated host seconds of one execution pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HostClock {
    seconds: f64,
}

impl HostClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` of host time.
    #[inline]
    pub fn charge(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative charge");
        // lint:allow(float-accum): HostClock is the sanctioned per-lane sequential accumulator; cross-lane merges go through the plan-ordered RunCost path
        self.seconds += seconds;
    }

    /// Total host seconds so far.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

/// Named cost of one pipeline pass (Scout, Explorer-k, Analyst, ...).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PassCost {
    /// Pass name for reports.
    pub name: String,
    /// Total host seconds over the whole run.
    pub seconds: f64,
}

/// Host cost of one **region unit** — the independent scheduling quantum
/// of the region-parallel runtime (one detailed region with its warming
/// work).
///
/// The cost is split by *lane*:
///
/// * `chained_seconds` — work that must execute in unit order on the
///   carried-state lane (cumulative functional warming in SMARTS,
///   checkpoint preparation). The lane is inherently sequential: unit
///   *m*'s chained work cannot start before unit *m−1*'s finished,
///   because it consumes the state the previous unit left behind.
/// * `parallel_seconds` — work that only needs the unit's own seed state
///   (its hierarchy clone / restored checkpoint / per-region profiling
///   context) and therefore fans out across workers.
///
/// Strategies whose regions are fully independent — CoolSim, MRRL,
/// checkpoint evaluation, DeLorean — record all their cost as
/// `parallel_seconds`; the chained lane is what makes SMARTS-style
/// functional warming resist region parallelism (§7's critique).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnitCost {
    /// Unit (region) index, in plan order.
    pub unit: u32,
    /// Seconds on the sequential carried-state lane.
    pub chained_seconds: f64,
    /// Seconds of freely parallel per-unit work.
    pub parallel_seconds: f64,
}

impl UnitCost {
    /// Total seconds of the unit across both lanes.
    pub fn seconds(&self) -> f64 {
        self.chained_seconds + self.parallel_seconds
    }
}

/// Cost of a complete sampled-simulation run, split by pass.
///
/// The TT passes run as concurrent processes, pipelined across detailed
/// regions (§3.2): while the Analyst evaluates region *m*, the Scout
/// already works on *m+1*. With enough cores the steady-state wall-clock
/// is set by the slowest pass; the remaining passes only contribute the
/// pipeline fill of roughly one region each.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunCost {
    passes: Vec<PassCost>,
    regions: u64,
    /// Per-region-unit costs recorded by the region scheduler; empty for
    /// runs that never went through it (legacy serial drivers).
    units: Vec<UnitCost>,
}

impl RunCost {
    /// A run cost over `regions` detailed regions.
    pub fn new(regions: u64) -> Self {
        RunCost {
            passes: Vec::new(),
            regions: regions.max(1),
            units: Vec::new(),
        }
    }

    /// Append a pass.
    pub fn push(&mut self, name: impl Into<String>, clock: HostClock) {
        self.passes.push(PassCost {
            name: name.into(),
            seconds: clock.seconds(),
        });
    }

    /// Reassemble a run cost from previously recorded parts — the
    /// deserialization counterpart of [`passes`](RunCost::passes),
    /// [`regions`](RunCost::regions) and [`units`](RunCost::units).
    /// Unlike [`RunCost::new`] this does **not** clamp the region count,
    /// so a round-trip through a codec reproduces the original value
    /// bitwise (including the `Default` zero-region case).
    pub fn from_parts(passes: Vec<PassCost>, regions: u64, units: Vec<UnitCost>) -> Self {
        RunCost {
            passes,
            regions,
            units,
        }
    }

    /// The recorded passes.
    pub fn passes(&self) -> &[PassCost] {
        &self.passes
    }

    /// The number of detailed regions this cost covers (0 only for a
    /// `Default`/deserialized-empty cost).
    pub fn regions(&self) -> u64 {
        self.regions
    }

    /// Total host resources consumed (CPU-seconds across all passes) —
    /// what parallel design-space exploration amortizes.
    pub fn total_resources(&self) -> f64 {
        self.passes.iter().map(|p| p.seconds).sum()
    }

    /// Estimated wall-clock of the pipelined run: the slowest pass plus a
    /// one-region pipeline-fill share of every other pass.
    ///
    /// `RunCost::new` clamps the region count to ≥ 1, but a `Default`
    /// (deserialized, empty) cost has zero regions — fall back to the
    /// serial sum there rather than dividing 0/0 into NaN.
    pub fn pipelined_wallclock(&self) -> f64 {
        if self.regions == 0 {
            return self.total_resources();
        }
        let max = self.passes.iter().map(|p| p.seconds).fold(0.0f64, f64::max);
        let rest: f64 = self.total_resources() - max;
        max + rest / self.regions as f64
    }

    /// Wall-clock of a serial (non-pipelined) run: the sum of all passes.
    pub fn serial_wallclock(&self) -> f64 {
        self.total_resources()
    }

    /// Merge another run cost (e.g. from a second pipeline stage set).
    /// Unit records are concatenated as well.
    pub fn merge(&mut self, other: &RunCost) {
        self.passes.extend(other.passes.iter().cloned());
        self.units.extend(other.units.iter().copied());
    }

    /// Record the cost of one region unit (see [`UnitCost`]). Units must
    /// be pushed in plan order — the wallclock model schedules them in
    /// the order recorded.
    pub fn push_unit(&mut self, unit: u32, chained_seconds: f64, parallel_seconds: f64) {
        debug_assert!(chained_seconds >= 0.0 && parallel_seconds >= 0.0);
        self.units.push(UnitCost {
            unit,
            chained_seconds,
            parallel_seconds,
        });
    }

    /// The recorded region units, in plan order (empty when the run did
    /// not go through the region scheduler).
    pub fn units(&self) -> &[UnitCost] {
        &self.units
    }

    /// Estimated wall-clock of the run executed by the **region-parallel
    /// scheduler** on `workers` host workers.
    ///
    /// The model is deterministic list scheduling over the recorded
    /// [`UnitCost`]s, in plan order:
    ///
    /// * The chained lane runs on one dedicated worker; unit *m*'s
    ///   chained work completes at the chained prefix sum through *m*.
    /// * Each unit's parallel body is released when its chained prefix is
    ///   done and is assigned to the earliest-available worker of the
    ///   remaining pool (`workers − 1` when any chained work exists,
    ///   otherwise all `workers`).
    ///
    /// With one worker (or no recorded units) this degrades to the serial
    /// sum, so `region_parallel_wallclock(1)` ==
    /// [`serial_wallclock`](RunCost::serial_wallclock) for
    /// scheduler-produced costs. The estimate depends only on recorded
    /// unit costs — never on the host the run happened to execute on.
    pub fn region_parallel_wallclock(&self, workers: usize) -> f64 {
        if self.units.is_empty() {
            // Legacy serial run: nothing to fan out.
            return self.serial_wallclock();
        }
        if workers <= 1 {
            return self.units.iter().map(|u| u.seconds()).sum();
        }
        let has_chain = self.units.iter().any(|u| u.chained_seconds > 0.0);
        let pool = if has_chain { workers - 1 } else { workers }.max(1);
        let mut chain_done = 0.0f64;
        let mut free = vec![0.0f64; pool.min(self.units.len())];
        let mut end = 0.0f64;
        for u in &self.units {
            // lint:allow(float-accum): units iterate in plan order regardless of worker count, so this fold is worker-count-invariant
            chain_done += u.chained_seconds;
            // Earliest-available worker (first on ties: deterministic).
            let mut w = 0usize;
            for i in 1..free.len() {
                if free[i] < free[w] {
                    w = i;
                }
            }
            let start = free[w].max(chain_done);
            free[w] = start + u.parallel_seconds;
            end = end.max(free[w]).max(chain_done);
        }
        end
    }

    /// Modeled speedup of the region-parallel run at `workers` workers
    /// over its own serial execution (1.0 when there is nothing to
    /// parallelize or the run is empty).
    pub fn region_parallel_speedup(&self, workers: usize) -> f64 {
        let serial = self.region_parallel_wallclock(1);
        let parallel = self.region_parallel_wallclock(workers);
        if parallel <= 0.0 {
            1.0
        } else {
            serial / parallel
        }
    }

    /// Estimated wall-clock of the region-parallel run when some units
    /// needed **retries** under the fault-isolated runtime.
    ///
    /// `attempts[i]` is the number of times unit *i*'s body executed
    /// (1 = clean first try; quarantined units still count every
    /// attempt). Retries happen in place on the worker that claimed the
    /// unit — the guarded runner re-invokes the body before the worker
    /// moves on — so the model charges the unit's parallel lane
    /// `attempts` times while the chained lane (seed production, done
    /// once upstream of the guarded body) is charged once.
    ///
    /// With every attempt count at 1 (or an empty slice) this is
    /// exactly [`Self::region_parallel_wallclock`], preserving the
    /// clean-run cost model bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is non-empty and not aligned one-to-one
    /// with the recorded units.
    pub fn retry_aware_wallclock(&self, workers: usize, attempts: &[u32]) -> f64 {
        if attempts.is_empty() || self.units.is_empty() {
            return self.region_parallel_wallclock(workers);
        }
        assert_eq!(
            attempts.len(),
            self.units.len(),
            "attempt counts must align with recorded units"
        );
        if workers <= 1 {
            return self
                .units
                .iter()
                .zip(attempts)
                .map(|(u, &a)| u.chained_seconds + u.parallel_seconds * f64::from(a.max(1)))
                .sum();
        }
        let has_chain = self.units.iter().any(|u| u.chained_seconds > 0.0);
        let pool = if has_chain { workers - 1 } else { workers }.max(1);
        let mut chain_done = 0.0f64;
        let mut free = vec![0.0f64; pool.min(self.units.len())];
        let mut end = 0.0f64;
        for (u, &a) in self.units.iter().zip(attempts) {
            // lint:allow(float-accum): units iterate in plan order regardless of worker count, so this fold is worker-count-invariant
            chain_done += u.chained_seconds;
            let mut w = 0usize;
            for i in 1..free.len() {
                if free[i] < free[w] {
                    w = i;
                }
            }
            let start = free[w].max(chain_done);
            free[w] = start + u.parallel_seconds * f64::from(a.max(1));
            end = end.max(free[w]).max(chain_done);
        }
        end
    }

    /// Modeled fractional overhead of the retried run over the clean one
    /// at `workers` workers: 0.0 means the retries were absorbed by idle
    /// workers, 0.05 means the run got 5% slower. Returns 0.0 when the
    /// clean run has no cost to compare against.
    pub fn retry_overhead(&self, workers: usize, attempts: &[u32]) -> f64 {
        let clean = self.region_parallel_wallclock(workers);
        if clean <= 0.0 {
            return 0.0;
        }
        (self.retry_aware_wallclock(workers, attempts) - clean) / clean
    }

    /// Estimated wall-clock of the run executed by the **speculative warm
    /// lane** on `workers` host workers, given the per-unit speculation
    /// outcomes recorded by the scheduler.
    ///
    /// The model is deterministic list scheduling, in plan order:
    ///
    /// * `workers − 1` speculation workers receive all spec tasks at
    ///   t = 0 (spec tasks have no chain dependency — that is the whole
    ///   point); each task is assigned to the earliest-available worker
    ///   (first on ties). Its proxy digest is ready at
    ///   `start + proxy_seconds`; its measurement at
    ///   `start + speculative_seconds`.
    /// * One reconciler advances the true carried state in plan order:
    ///   it waits for unit *m*'s digest, then on a **commit** merely
    ///   waits for the speculative measurement (adopting the worker's
    ///   end state is free in this model), while on a **miss** it
    ///   performs the unit's full chained warm plus measurement itself.
    ///
    /// With one worker there is nobody to speculate, so the lane
    /// degrades to the serial sum — identical to
    /// [`Self::region_parallel_wallclock`]`(1)`. Committed units replace the
    /// blind chained prefix warm with the worker's (directed, shorter)
    /// speculative warm, so the modeled speedup reflects genuine work
    /// reduction and may exceed the worker count. Like every model here
    /// it depends only on recorded costs, never on the host.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is non-empty and not aligned one-to-one with the
    /// recorded units.
    pub fn speculative_wallclock(&self, workers: usize, spec: &[SpecUnit]) -> f64 {
        if self.units.is_empty() {
            return self.serial_wallclock();
        }
        if workers <= 1 || spec.is_empty() {
            return self.region_parallel_wallclock(workers);
        }
        assert_eq!(
            spec.len(),
            self.units.len(),
            "speculation outcomes must align with recorded units"
        );
        let pool = (workers - 1).max(1);
        let mut free = vec![0.0f64; pool.min(spec.len())];
        let mut digest_ready = vec![0.0f64; spec.len()];
        let mut spec_done = vec![0.0f64; spec.len()];
        for (i, s) in spec.iter().enumerate() {
            debug_assert!(s.proxy_seconds >= 0.0 && s.speculative_seconds >= s.proxy_seconds);
            let mut w = 0usize;
            for k in 1..free.len() {
                if free[k] < free[w] {
                    w = k;
                }
            }
            digest_ready[i] = free[w] + s.proxy_seconds;
            spec_done[i] = free[w] + s.speculative_seconds;
            free[w] = spec_done[i];
        }
        let mut t = 0.0f64;
        for (i, (u, s)) in self.units.iter().zip(spec).enumerate() {
            t = t.max(digest_ready[i]);
            if s.committed {
                t = t.max(spec_done[i]);
            } else {
                // lint:allow(float-accum): plan-ordered reconciler fold, worker-count-invariant by construction
                t += u.chained_seconds + u.parallel_seconds;
            }
        }
        t
    }

    /// Modeled speedup of the speculative warm lane at `workers` workers
    /// over the sequential chained run (1.0 when empty).
    pub fn speculative_speedup(&self, workers: usize, spec: &[SpecUnit]) -> f64 {
        let serial = self.region_parallel_wallclock(1);
        let wall = self.speculative_wallclock(workers, spec);
        if wall <= 0.0 {
            1.0
        } else {
            serial / wall
        }
    }
}

/// Speculation outcome of one region unit, recorded by the speculative
/// warm lane and consumed by
/// [`RunCost::speculative_wallclock`]. Kept *outside* [`RunCost`] so the
/// simulation report (which embeds the cost) stays bitwise identical to
/// the sequential run's.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpecUnit {
    /// Unit (region) index, in plan order.
    pub unit: u32,
    /// Whether the reconciler committed the speculative measurement.
    pub committed: bool,
    /// Seconds from the spec task's start until its proxy digest exists
    /// (proxy construction: directed window warm from the proxy source).
    pub proxy_seconds: f64,
    /// Total seconds of the spec task (proxy + region warm + detailed
    /// measurement); always ≥ `proxy_seconds`.
    pub speculative_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = HostClock::new();
        c.charge(1.5);
        c.charge(0.25);
        assert!((c.seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn pipelined_wallclock_tracks_slowest_pass() {
        let mut r = RunCost::new(10);
        let mut fast = HostClock::new();
        fast.charge(1.0);
        let mut slow = HostClock::new();
        slow.charge(30.0);
        r.push("scout", fast);
        r.push("explorer-1", slow);
        r.push("analyst", fast);
        // 30 + (1 + 1)/10
        assert!((r.pipelined_wallclock() - 30.2).abs() < 1e-9);
        assert!((r.serial_wallclock() - 32.0).abs() < 1e-9);
        assert!((r.total_resources() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_cost_is_zero() {
        let r = RunCost::new(5);
        assert_eq!(r.pipelined_wallclock(), 0.0);
        assert_eq!(r.total_resources(), 0.0);
    }

    #[test]
    fn independent_units_scale_with_workers() {
        let mut r = RunCost::new(10);
        let mut c = HostClock::new();
        for u in 0..10 {
            r.push_unit(u, 0.0, 1.0);
            c.charge(1.0);
        }
        r.push("strategy", c);
        assert!((r.region_parallel_wallclock(1) - 10.0).abs() < 1e-12);
        // 10 equal units on 4 workers: greedy loads 3/3/2/2 → makespan 3.
        assert!((r.region_parallel_wallclock(4) - 3.0).abs() < 1e-12);
        assert!((r.region_parallel_speedup(4) - 10.0 / 3.0).abs() < 1e-9);
        // More workers than units: one round.
        assert!((r.region_parallel_wallclock(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chained_lane_bounds_the_wallclock() {
        let mut r = RunCost::new(4);
        for u in 0..4 {
            r.push_unit(u, 5.0, 1.0);
        }
        // Serial: 4 × (5 + 1) = 24.
        assert!((r.region_parallel_wallclock(1) - 24.0).abs() < 1e-12);
        // Many workers: the chain (20 s) still gates everything; the last
        // unit's body starts at 20 and runs 1 s.
        assert!((r.region_parallel_wallclock(8) - 21.0).abs() < 1e-12);
        // Two workers: one runs the chain, one runs all four bodies, each
        // released behind its chained prefix → last body ends at 21.
        assert!((r.region_parallel_wallclock(2) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn runs_without_units_fall_back_to_serial() {
        let mut r = RunCost::new(3);
        let mut c = HostClock::new();
        c.charge(7.0);
        r.push("only", c);
        assert_eq!(r.units().len(), 0);
        assert!((r.region_parallel_wallclock(8) - 7.0).abs() < 1e-12);
        assert_eq!(r.region_parallel_speedup(8), 1.0);
    }

    #[test]
    fn unit_cost_totals_both_lanes() {
        let u = UnitCost {
            unit: 0,
            chained_seconds: 2.0,
            parallel_seconds: 0.5,
        };
        assert!((u.seconds() - 2.5).abs() < 1e-12);
    }

    fn spec(unit: u32, committed: bool, proxy: f64, total: f64) -> SpecUnit {
        SpecUnit {
            unit,
            committed,
            proxy_seconds: proxy,
            speculative_seconds: total,
        }
    }

    #[test]
    fn committed_speculation_beats_the_chain() {
        let mut r = RunCost::new(4);
        for u in 0..4 {
            r.push_unit(u, 5.0, 1.0);
        }
        let all: Vec<SpecUnit> = (0..4).map(|u| spec(u, true, 0.5, 2.0)).collect();
        // Serial chain: 4 × 6 = 24 s.
        assert!((r.speculative_wallclock(1, &all) - 24.0).abs() < 1e-12);
        // 4 workers → 3 spec workers. Units 0..2 start at 0 (done at 2),
        // unit 3 starts at 2 on worker 0 (done at 4). The reconciler
        // commits everything, so the wallclock is the last spec finish.
        assert!((r.speculative_wallclock(4, &all) - 4.0).abs() < 1e-12);
        // Work reduction lets speedup exceed the worker count.
        assert!((r.speculative_speedup(4, &all) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn missed_speculation_degrades_to_roughly_serial() {
        let mut r = RunCost::new(3);
        for u in 0..3 {
            r.push_unit(u, 5.0, 1.0);
        }
        let none: Vec<SpecUnit> = (0..3).map(|u| spec(u, false, 0.5, 2.0)).collect();
        // The reconciler re-does every unit (18 s) after waiting 0.5 s
        // for the first digest; later digests are already available.
        let wall = r.speculative_wallclock(4, &none);
        assert!((wall - 18.5).abs() < 1e-12, "wall = {wall}");
        assert!(r.speculative_speedup(4, &none) < 1.0);
    }

    #[test]
    fn mixed_outcomes_interleave_commit_and_redo() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 5.0, 1.0);
        r.push_unit(1, 5.0, 1.0);
        let mixed = [spec(0, false, 0.5, 2.0), spec(1, true, 0.5, 2.0)];
        // 2 workers → 1 spec worker: unit 0 digest at 0.5, task done 2.0;
        // unit 1 starts at 2.0, digest 2.5, done 4.0. Reconciler: waits
        // 0.5, redoes unit 0 (6 s) → 6.5; unit 1 committed, done at 4.0
        // already → 6.5.
        assert!((r.speculative_wallclock(2, &mixed) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn speculation_without_outcomes_falls_back_to_chained_model() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 5.0, 1.0);
        r.push_unit(1, 5.0, 1.0);
        assert_eq!(
            r.speculative_wallclock(4, &[]),
            r.region_parallel_wallclock(4)
        );
    }

    #[test]
    #[should_panic(expected = "align with recorded units")]
    fn misaligned_outcomes_panic() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 1.0, 1.0);
        r.push_unit(1, 1.0, 1.0);
        let _ = r.speculative_wallclock(4, &[spec(0, true, 0.1, 0.2)]);
    }

    #[test]
    fn from_parts_round_trips_bitwise() {
        let mut r = RunCost::new(6);
        let mut c = HostClock::new();
        c.charge(3.5);
        r.push("scout", c);
        r.push_unit(0, 1.0, 2.0);
        r.push_unit(1, 0.5, 4.0);
        let rebuilt = RunCost::from_parts(r.passes().to_vec(), r.regions(), r.units().to_vec());
        assert_eq!(r, rebuilt);
        // The Default (zero-region) cost must survive too — from_parts
        // must not clamp the way `new` does.
        let d = RunCost::default();
        assert_eq!(
            d,
            RunCost::from_parts(d.passes().to_vec(), d.regions(), d.units().to_vec())
        );
    }

    #[test]
    fn clean_attempts_match_the_plain_model() {
        let mut r = RunCost::new(8);
        for u in 0..8 {
            r.push_unit(u, 0.25, 1.0);
        }
        let ones = vec![1u32; 8];
        for w in [1usize, 2, 4, 8] {
            assert_eq!(
                r.retry_aware_wallclock(w, &ones),
                r.region_parallel_wallclock(w)
            );
            assert_eq!(
                r.retry_aware_wallclock(w, &[]),
                r.region_parallel_wallclock(w)
            );
            assert_eq!(r.retry_overhead(w, &ones), 0.0);
        }
    }

    #[test]
    fn retries_charge_the_parallel_lane_per_attempt() {
        let mut r = RunCost::new(4);
        for u in 0..4 {
            r.push_unit(u, 0.0, 1.0);
        }
        // Serial: unit 2 runs three times → 3 + 3×1 = 6.
        let attempts = [1u32, 1, 3, 1];
        assert!((r.retry_aware_wallclock(1, &attempts) - 6.0).abs() < 1e-12);
        // 4 workers, no chain: each unit has its own worker, the retried
        // unit gates the makespan at 3.0 → overhead 200% over clean 1.0.
        assert!((r.retry_aware_wallclock(4, &attempts) - 3.0).abs() < 1e-12);
        assert!((r.retry_overhead(4, &attempts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_workers_absorb_retries_of_short_units() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 0.0, 4.0);
        r.push_unit(1, 0.0, 1.0);
        // Two workers: unit 0 (4 s) gates the clean makespan; unit 1 can
        // retry twice on its own worker without moving the wallclock.
        let attempts = [1u32, 3];
        assert!((r.retry_aware_wallclock(2, &attempts) - 4.0).abs() < 1e-12);
        assert_eq!(r.retry_overhead(2, &attempts), 0.0);
    }

    #[test]
    fn retries_do_not_recharge_the_chained_lane() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 5.0, 1.0);
        r.push_unit(1, 5.0, 1.0);
        // Serial with a doubled attempt on unit 1: chain once, body twice
        // → 5 + 1 + 5 + 2×1 = 13.
        assert!((r.retry_aware_wallclock(1, &[1, 2]) - 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align with recorded units")]
    fn misaligned_attempts_panic() {
        let mut r = RunCost::new(2);
        r.push_unit(0, 1.0, 1.0);
        r.push_unit(1, 1.0, 1.0);
        let _ = r.retry_aware_wallclock(4, &[1]);
    }

    #[test]
    fn merge_appends_passes() {
        let mut a = RunCost::new(4);
        let mut c = HostClock::new();
        c.charge(2.0);
        a.push("x", c);
        let mut b = RunCost::new(4);
        b.push("y", c);
        a.merge(&b);
        assert_eq!(a.passes().len(), 2);
        assert!((a.total_resources() - 4.0).abs() < 1e-12);
    }
}
