//! Host-time accounting: per-pass clocks and pipelined run costs.

use serde::{Deserialize, Serialize};

/// Accumulated host seconds of one execution pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HostClock {
    seconds: f64,
}

impl HostClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` of host time.
    #[inline]
    pub fn charge(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative charge");
        self.seconds += seconds;
    }

    /// Total host seconds so far.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

/// Named cost of one pipeline pass (Scout, Explorer-k, Analyst, ...).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PassCost {
    /// Pass name for reports.
    pub name: String,
    /// Total host seconds over the whole run.
    pub seconds: f64,
}

/// Cost of a complete sampled-simulation run, split by pass.
///
/// The TT passes run as concurrent processes, pipelined across detailed
/// regions (§3.2): while the Analyst evaluates region *m*, the Scout
/// already works on *m+1*. With enough cores the steady-state wall-clock
/// is set by the slowest pass; the remaining passes only contribute the
/// pipeline fill of roughly one region each.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunCost {
    passes: Vec<PassCost>,
    regions: u64,
}

impl RunCost {
    /// A run cost over `regions` detailed regions.
    pub fn new(regions: u64) -> Self {
        RunCost {
            passes: Vec::new(),
            regions: regions.max(1),
        }
    }

    /// Append a pass.
    pub fn push(&mut self, name: impl Into<String>, clock: HostClock) {
        self.passes.push(PassCost {
            name: name.into(),
            seconds: clock.seconds(),
        });
    }

    /// The recorded passes.
    pub fn passes(&self) -> &[PassCost] {
        &self.passes
    }

    /// Total host resources consumed (CPU-seconds across all passes) —
    /// what parallel design-space exploration amortizes.
    pub fn total_resources(&self) -> f64 {
        self.passes.iter().map(|p| p.seconds).sum()
    }

    /// Estimated wall-clock of the pipelined run: the slowest pass plus a
    /// one-region pipeline-fill share of every other pass.
    ///
    /// `RunCost::new` clamps the region count to ≥ 1, but a `Default`
    /// (deserialized, empty) cost has zero regions — fall back to the
    /// serial sum there rather than dividing 0/0 into NaN.
    pub fn pipelined_wallclock(&self) -> f64 {
        if self.regions == 0 {
            return self.total_resources();
        }
        let max = self.passes.iter().map(|p| p.seconds).fold(0.0f64, f64::max);
        let rest: f64 = self.total_resources() - max;
        max + rest / self.regions as f64
    }

    /// Wall-clock of a serial (non-pipelined) run: the sum of all passes.
    pub fn serial_wallclock(&self) -> f64 {
        self.total_resources()
    }

    /// Merge another run cost (e.g. from a second pipeline stage set).
    pub fn merge(&mut self, other: &RunCost) {
        self.passes.extend(other.passes.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = HostClock::new();
        c.charge(1.5);
        c.charge(0.25);
        assert!((c.seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn pipelined_wallclock_tracks_slowest_pass() {
        let mut r = RunCost::new(10);
        let mut fast = HostClock::new();
        fast.charge(1.0);
        let mut slow = HostClock::new();
        slow.charge(30.0);
        r.push("scout", fast);
        r.push("explorer-1", slow);
        r.push("analyst", fast);
        // 30 + (1 + 1)/10
        assert!((r.pipelined_wallclock() - 30.2).abs() < 1e-9);
        assert!((r.serial_wallclock() - 32.0).abs() < 1e-9);
        assert!((r.total_resources() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_cost_is_zero() {
        let r = RunCost::new(5);
        assert_eq!(r.pipelined_wallclock(), 0.0);
        assert_eq!(r.total_resources(), 0.0);
    }

    #[test]
    fn merge_appends_passes() {
        let mut a = RunCost::new(4);
        let mut c = HostClock::new();
        c.charge(2.0);
        a.push("x", c);
        let mut b = RunCost::new(4);
        b.push("y", c);
        a.merge(&b);
        assert_eq!(a.passes().len(), 2);
        assert!((a.total_resources() - 4.0).abs() < 1e-12);
    }
}
