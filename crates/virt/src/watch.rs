//! Page-granularity watchpoints.
//!
//! The paper's watchpoints are built on the OS page-protection mechanism
//! (§2.3): a whole 4 KiB page is protected to watch one cacheline, so any
//! access to the page traps. Traps to the page that do not touch a watched
//! line are *false positives* — pure overhead that the trap handler must
//! absorb. This module reproduces that granularity mismatch: watches are
//! registered per line, lookups happen per page, and the distinction
//! between a true hit and a false positive is reported per access.
//!
//! The table behind it is part of the flat lookup substrate (PR 3): a
//! [`PageMap`] from page to a small inline list of `(line, refcount)`
//! entries, so the per-access [`classify`](WatchSet::classify) probe is
//! one open-addressing lookup plus a scan of at most a handful of inline
//! slots — no nested `std` hashing. Watches are *refcounted*: a line
//! watched both as a key cacheline and as a vicinity sample stays armed
//! until both registrations are released, which keeps VDP trap accounting
//! faithful when the two overlap.

use delorean_trace::{LineAddr, MemAccess, PageAddr, PageMap};

/// Classification of one access against a [`WatchSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Unwatched page: execution continues at native/VFF speed.
    None,
    /// Watched page, unwatched line: trap overhead with no information.
    FalsePositive,
    /// Watched page and watched line.
    Hit(LineAddr),
}

impl Trap {
    /// `true` unless [`Trap::None`].
    pub fn traps(&self) -> bool {
        !matches!(self, Trap::None)
    }
}

/// Watched-line entries kept inline per page before spilling to the heap.
/// Real key sets put 1–3 watched lines on a hot page; 6 inline slots
/// cover that with room to spare inside one cacheline of entries.
const INLINE_LINES: usize = 6;

/// The watched lines of one protected page: `(line offset in page,
/// refcount)` pairs, inline up to [`INLINE_LINES`] with a heap spill for
/// pathological pages (up to the 64 lines a page holds).
#[derive(Clone, Debug, Default)]
struct PageLines {
    len: u8,
    inline: [(u8, u32); INLINE_LINES],
    spill: Vec<(u8, u32)>,
}

impl PageLines {
    fn line_count(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    #[inline]
    fn contains(&self, offset: u8) -> bool {
        self.inline[..self.len as usize]
            .iter()
            .any(|&(o, _)| o == offset)
            || self.spill.iter().any(|&(o, _)| o == offset)
    }

    /// Add one watch reference; `true` if the line was not yet watched.
    fn add(&mut self, offset: u8) -> bool {
        for e in &mut self.inline[..self.len as usize] {
            if e.0 == offset {
                e.1 += 1;
                return false;
            }
        }
        for e in &mut self.spill {
            if e.0 == offset {
                e.1 += 1;
                return false;
            }
        }
        if (self.len as usize) < INLINE_LINES {
            self.inline[self.len as usize] = (offset, 1);
            self.len += 1;
        } else {
            self.spill.push((offset, 1));
        }
        true
    }

    /// Drop one watch reference. Returns `(was_watched, line_released)`.
    fn remove(&mut self, offset: u8) -> (bool, bool) {
        for i in 0..self.len as usize {
            if self.inline[i].0 == offset {
                self.inline[i].1 -= 1;
                if self.inline[i].1 > 0 {
                    return (true, false);
                }
                // Keep the inline prefix dense: pull in the last entry
                // (from the spill if one exists, else the inline tail).
                if let Some(e) = self.spill.pop() {
                    self.inline[i] = e;
                } else {
                    self.len -= 1;
                    self.inline[i] = self.inline[self.len as usize];
                }
                return (true, true);
            }
        }
        for i in 0..self.spill.len() {
            if self.spill[i].0 == offset {
                self.spill[i].1 -= 1;
                if self.spill[i].1 > 0 {
                    return (true, false);
                }
                self.spill.swap_remove(i);
                return (true, true);
            }
        }
        (false, false)
    }
}

/// A set of line-granularity watchpoints with page-granularity triggering.
///
/// ```
/// use delorean_virt::{Trap, WatchSet};
/// use delorean_trace::LineAddr;
///
/// let mut w = WatchSet::new();
/// w.watch_line(LineAddr(64)); // page 1 (64 lines/page)
/// assert_eq!(w.classify_line(LineAddr(64)), Trap::Hit(LineAddr(64)));
/// assert_eq!(w.classify_line(LineAddr(65)), Trap::FalsePositive);
/// assert_eq!(w.classify_line(LineAddr(0)), Trap::None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WatchSet {
    pages: PageMap<PageLines>,
    lines: usize,
}

#[inline]
fn line_offset(line: LineAddr) -> u8 {
    (line.0 % PageAddr::lines_per_page()) as u8
}

impl WatchSet {
    /// An empty watch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Watch `line` (protects its whole page). Watches are refcounted:
    /// watching an already-watched line adds a reference, and the line
    /// stays armed until [`unwatch_line`](WatchSet::unwatch_line) has
    /// been called once per reference — so a key watchpoint survives a
    /// vicinity sample arming and disarming on the same line.
    pub fn watch_line(&mut self, line: LineAddr) {
        if self.pages.or_default(line.page()).add(line_offset(line)) {
            self.lines += 1;
        }
    }

    /// Drop one watch reference on `line`; the line disarms when its last
    /// reference is dropped and the page unprotects once its last watched
    /// line is removed. Returns whether the line was watched.
    pub fn unwatch_line(&mut self, line: LineAddr) -> bool {
        let page = line.page();
        let Some(lines) = self.pages.get_mut(page) else {
            return false;
        };
        let (was_watched, released) = lines.remove(line_offset(line));
        if released {
            self.lines -= 1;
            if lines.line_count() == 0 {
                self.pages.remove(page);
            }
        }
        was_watched
    }

    /// Number of watched lines (distinct lines, not references).
    pub fn watched_lines(&self) -> usize {
        self.lines
    }

    /// Number of protected pages.
    pub fn watched_pages(&self) -> usize {
        self.pages.len()
    }

    /// `true` if nothing is watched.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Classify an access by its line address.
    #[inline]
    pub fn classify_line(&self, line: LineAddr) -> Trap {
        match self.pages.get(line.page()) {
            None => Trap::None,
            Some(lines) => {
                if lines.contains(line_offset(line)) {
                    Trap::Hit(line)
                } else {
                    Trap::FalsePositive
                }
            }
        }
    }

    /// Classify a full access record.
    #[inline]
    pub fn classify(&self, access: &MemAccess) -> Trap {
        self.classify_line(access.line())
    }

    /// Remove every watchpoint.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity_causes_false_positives() {
        let mut w = WatchSet::new();
        w.watch_line(LineAddr(128)); // page 2
        assert_eq!(w.classify_line(LineAddr(129)), Trap::FalsePositive);
        assert_eq!(w.classify_line(LineAddr(191)), Trap::FalsePositive);
        assert_eq!(w.classify_line(LineAddr(192)), Trap::None); // page 3
        assert_eq!(w.classify_line(LineAddr(128)), Trap::Hit(LineAddr(128)));
    }

    #[test]
    fn unwatch_releases_page_when_empty() {
        let mut w = WatchSet::new();
        w.watch_line(LineAddr(0));
        w.watch_line(LineAddr(1)); // same page
        assert_eq!(w.watched_pages(), 1);
        assert_eq!(w.watched_lines(), 2);
        assert!(w.unwatch_line(LineAddr(0)));
        assert_eq!(w.classify_line(LineAddr(5)), Trap::FalsePositive);
        assert!(w.unwatch_line(LineAddr(1)));
        assert_eq!(w.classify_line(LineAddr(5)), Trap::None);
        assert!(w.is_empty());
        assert!(!w.unwatch_line(LineAddr(1)), "double unwatch");
    }

    #[test]
    fn traps_helper() {
        assert!(!Trap::None.traps());
        assert!(Trap::FalsePositive.traps());
        assert!(Trap::Hit(LineAddr(0)).traps());
    }

    #[test]
    fn clear_empties_everything() {
        let mut w = WatchSet::new();
        for i in 0..100 {
            w.watch_line(LineAddr(i * 100));
        }
        assert!(w.watched_lines() == 100);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.watched_pages(), 0);
        assert_eq!(w.watched_lines(), 0);
    }

    #[test]
    fn refcounted_watch_survives_one_unwatch() {
        // The Explorer key/vicinity clash: a line watched as a key and
        // again as a vicinity sample must stay armed after the vicinity
        // side disarms.
        let mut w = WatchSet::new();
        w.watch_line(LineAddr(64)); // key registration
        w.watch_line(LineAddr(64)); // vicinity registration
        assert_eq!(w.watched_lines(), 1, "refs are not extra lines");
        assert!(w.unwatch_line(LineAddr(64)), "vicinity disarm");
        assert_eq!(
            w.classify_line(LineAddr(64)),
            Trap::Hit(LineAddr(64)),
            "key watchpoint must survive the vicinity disarm"
        );
        assert!(w.unwatch_line(LineAddr(64)), "key disarm");
        assert_eq!(w.classify_line(LineAddr(64)), Trap::None);
        assert!(w.is_empty());
    }

    #[test]
    fn many_lines_on_one_page_spill_correctly() {
        let mut w = WatchSet::new();
        // All 64 lines of page 3, far beyond the inline capacity.
        let base = 3 * PageAddr::lines_per_page();
        for i in 0..64 {
            w.watch_line(LineAddr(base + i));
        }
        assert_eq!(w.watched_pages(), 1);
        assert_eq!(w.watched_lines(), 64);
        for i in 0..64 {
            assert_eq!(
                w.classify_line(LineAddr(base + i)),
                Trap::Hit(LineAddr(base + i))
            );
        }
        // Remove in an order that exercises inline/spill compaction.
        for i in (0..64).rev() {
            assert!(w.unwatch_line(LineAddr(base + i)));
            for j in 0..i {
                assert_eq!(
                    w.classify_line(LineAddr(base + j)),
                    Trap::Hit(LineAddr(base + j)),
                    "line {j} lost after removing {i}"
                );
            }
        }
        assert!(w.is_empty());
    }
}
