//! Page-granularity watchpoints.
//!
//! The paper's watchpoints are built on the OS page-protection mechanism
//! (§2.3): a whole 4 KiB page is protected to watch one cacheline, so any
//! access to the page traps. Traps to the page that do not touch a watched
//! line are *false positives* — pure overhead that the trap handler must
//! absorb. This module reproduces that granularity mismatch: watches are
//! registered per line, lookups happen per page, and the distinction
//! between a true hit and a false positive is reported per access.

use delorean_trace::{LineAddr, MemAccess, PageAddr};
use std::collections::{HashMap, HashSet};

/// Classification of one access against a [`WatchSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Unwatched page: execution continues at native/VFF speed.
    None,
    /// Watched page, unwatched line: trap overhead with no information.
    FalsePositive,
    /// Watched page and watched line.
    Hit(LineAddr),
}

impl Trap {
    /// `true` unless [`Trap::None`].
    pub fn traps(&self) -> bool {
        !matches!(self, Trap::None)
    }
}

/// A set of line-granularity watchpoints with page-granularity triggering.
///
/// ```
/// use delorean_virt::{Trap, WatchSet};
/// use delorean_trace::LineAddr;
///
/// let mut w = WatchSet::new();
/// w.watch_line(LineAddr(64)); // page 1 (64 lines/page)
/// assert_eq!(w.classify_line(LineAddr(64)), Trap::Hit(LineAddr(64)));
/// assert_eq!(w.classify_line(LineAddr(65)), Trap::FalsePositive);
/// assert_eq!(w.classify_line(LineAddr(0)), Trap::None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WatchSet {
    pages: HashMap<PageAddr, HashSet<LineAddr>>,
}

impl WatchSet {
    /// An empty watch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Watch `line` (protects its whole page).
    pub fn watch_line(&mut self, line: LineAddr) {
        self.pages.entry(line.page()).or_default().insert(line);
    }

    /// Stop watching `line`; the page unprotects once its last watched
    /// line is removed. Returns whether the line was watched.
    pub fn unwatch_line(&mut self, line: LineAddr) -> bool {
        let page = line.page();
        let Some(lines) = self.pages.get_mut(&page) else {
            return false;
        };
        let removed = lines.remove(&line);
        if lines.is_empty() {
            self.pages.remove(&page);
        }
        removed
    }

    /// Number of watched lines.
    pub fn watched_lines(&self) -> usize {
        self.pages.values().map(|s| s.len()).sum()
    }

    /// Number of protected pages.
    pub fn watched_pages(&self) -> usize {
        self.pages.len()
    }

    /// `true` if nothing is watched.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Classify an access by its line address.
    #[inline]
    pub fn classify_line(&self, line: LineAddr) -> Trap {
        match self.pages.get(&line.page()) {
            None => Trap::None,
            Some(lines) => {
                if lines.contains(&line) {
                    Trap::Hit(line)
                } else {
                    Trap::FalsePositive
                }
            }
        }
    }

    /// Classify a full access record.
    #[inline]
    pub fn classify(&self, access: &MemAccess) -> Trap {
        self.classify_line(access.line())
    }

    /// Remove every watchpoint.
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity_causes_false_positives() {
        let mut w = WatchSet::new();
        w.watch_line(LineAddr(128)); // page 2
        assert_eq!(w.classify_line(LineAddr(129)), Trap::FalsePositive);
        assert_eq!(w.classify_line(LineAddr(191)), Trap::FalsePositive);
        assert_eq!(w.classify_line(LineAddr(192)), Trap::None); // page 3
        assert_eq!(w.classify_line(LineAddr(128)), Trap::Hit(LineAddr(128)));
    }

    #[test]
    fn unwatch_releases_page_when_empty() {
        let mut w = WatchSet::new();
        w.watch_line(LineAddr(0));
        w.watch_line(LineAddr(1)); // same page
        assert_eq!(w.watched_pages(), 1);
        assert_eq!(w.watched_lines(), 2);
        assert!(w.unwatch_line(LineAddr(0)));
        assert_eq!(w.classify_line(LineAddr(5)), Trap::FalsePositive);
        assert!(w.unwatch_line(LineAddr(1)));
        assert_eq!(w.classify_line(LineAddr(5)), Trap::None);
        assert!(w.is_empty());
        assert!(!w.unwatch_line(LineAddr(1)), "double unwatch");
    }

    #[test]
    fn traps_helper() {
        assert!(!Trap::None.traps());
        assert!(Trap::FalsePositive.traps());
        assert!(Trap::Hit(LineAddr(0)).traps());
    }

    #[test]
    fn clear_empties_everything() {
        let mut w = WatchSet::new();
        for i in 0..100 {
            w.watch_line(LineAddr(i * 100));
        }
        assert!(w.watched_lines() == 100);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.watched_pages(), 0);
    }
}
