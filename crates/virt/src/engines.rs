//! Execution engines: fast-forward, functional scan, watchpoint scan.
//!
//! Each engine advances a pass over a range of the workload while charging
//! a [`HostClock`] according to the [`CostModel`]. The *observable* result
//! (which accesses the callback sees) is exact; only the charged time is a
//! model.

use crate::clock::HostClock;
use crate::cost::{CostModel, WorkKind};
use crate::watch::{Trap, WatchSet};
use delorean_trace::{MemAccess, Workload, WorkloadExt, CURSOR_BATCH};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Skip from instruction `from` to instruction `to` at VFF speed.
///
/// The position-addressable workload makes the skip itself free; only the
/// modeled host time is charged.
///
/// # Panics
///
/// Panics in debug builds if `to < from`.
pub fn fast_forward(cost: &CostModel, clock: &mut HostClock, from_instr: u64, to_instr: u64) {
    debug_assert!(to_instr >= from_instr, "fast-forward going backward");
    let n = to_instr.saturating_sub(from_instr);
    clock.charge(cost.instr_seconds(WorkKind::Vff, n));
}

/// Functionally simulate the accesses with indices in `accesses`, invoking
/// `on_access` for each, charging functional-simulation time for the
/// corresponding instructions.
pub fn functional_scan<F: FnMut(&MemAccess)>(
    workload: &dyn Workload,
    cost: &CostModel,
    clock: &mut HostClock,
    accesses: Range<u64>,
    mut on_access: F,
) {
    functional_scan_batched(workload, cost, clock, accesses, |batch| {
        for a in batch {
            on_access(a);
        }
    });
}

/// Batched [`functional_scan`]: invoke `on_batch` with cursor-filled
/// slices of consecutive accesses instead of one callback per access.
///
/// This is the access source for slice-consuming state sinks — above all
/// [`Hierarchy::warm_slice`](../delorean_cache/struct.Hierarchy.html) —
/// where a per-access closure would reintroduce the dispatch the batched
/// API exists to remove. Charging is identical to [`functional_scan`].
pub fn functional_scan_batched<F: FnMut(&[MemAccess])>(
    workload: &dyn Workload,
    cost: &CostModel,
    clock: &mut HostClock,
    accesses: Range<u64>,
    mut on_batch: F,
) {
    let n_accesses = accesses.end.saturating_sub(accesses.start);
    clock.charge(cost.instr_seconds(WorkKind::Functional, n_accesses * workload.mem_period()));
    let mut cursor = workload.cursor(accesses);
    let mut buf = Vec::with_capacity(CURSOR_BATCH);
    while cursor.fill(&mut buf, CURSOR_BATCH) > 0 {
        on_batch(&buf);
    }
}

/// Statistics of one watchpoint (VDP) scan.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchScanStats {
    /// Accesses inspected by the scan.
    pub accesses_scanned: u64,
    /// Traps where the page was watched but not the line.
    pub false_positives: u64,
    /// Traps on watched lines.
    pub true_hits: u64,
}

impl WatchScanStats {
    /// All traps taken.
    pub fn traps(&self) -> u64 {
        self.false_positives + self.true_hits
    }

    /// Accumulate another scan's statistics.
    pub fn merge(&mut self, other: &WatchScanStats) {
        self.accesses_scanned += other.accesses_scanned;
        self.false_positives += other.false_positives;
        self.true_hits += other.true_hits;
    }
}

/// Virtualized directed profiling: run the access range at VFF speed,
/// trapping on accesses to watched pages.
///
/// `on_hit` is invoked for true hits only and may mutate the watch set
/// (e.g. remove a satisfied vicinity watchpoint, or keep a key-cacheline
/// watchpoint armed to find the *last* access). False positives cost trap
/// time but carry no information — the page-granularity tax the paper
/// describes for povray.
pub fn watchpoint_scan<F: FnMut(&MemAccess, &mut WatchSet)>(
    workload: &dyn Workload,
    cost: &CostModel,
    clock: &mut HostClock,
    accesses: Range<u64>,
    watch: &mut WatchSet,
    mut on_hit: F,
) -> WatchScanStats {
    let mut stats = WatchScanStats::default();
    let n_accesses = accesses.end.saturating_sub(accesses.start);
    stats.accesses_scanned = n_accesses;
    clock.charge(cost.instr_seconds(WorkKind::Vff, n_accesses * workload.mem_period()));
    workload.for_each_access(accesses, |a| match watch.classify(a) {
        Trap::None => {}
        Trap::FalsePositive => {
            stats.false_positives += 1;
            clock.charge(cost.trap_seconds);
        }
        Trap::Hit(_) => {
            stats.true_hits += 1;
            clock.charge(cost.trap_seconds);
            on_hit(a, watch);
        }
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::{spec_workload, LineAddr, Scale};

    fn demo_workload() -> impl Workload {
        spec_workload("hmmer", Scale::tiny(), 5).unwrap()
    }

    #[test]
    fn fast_forward_charges_vff_time() {
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        fast_forward(&cost, &mut clock, 0, 1_800_000_000);
        assert!((clock.seconds() - 1.0).abs() < 1e-9); // 1.8B instr at 1800 MIPS
    }

    #[test]
    fn functional_scan_visits_every_access() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let mut seen = Vec::new();
        functional_scan(&w, &cost, &mut clock, 100..200, |a| seen.push(a.index));
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[0], 100);
        assert!(clock.seconds() > 0.0);
    }

    #[test]
    fn batched_scan_covers_the_range_in_slices() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let mut seen = Vec::new();
        let mut batches = 0usize;
        functional_scan_batched(&w, &cost, &mut clock, 100..3_000, |batch| {
            batches += 1;
            assert!(!batch.is_empty());
            seen.extend(batch.iter().map(|a| a.index));
        });
        assert_eq!(seen, (100..3_000).collect::<Vec<_>>());
        assert!(batches < seen.len(), "no batching happened");
        // Same charge as the per-access form.
        let mut per_access = HostClock::new();
        functional_scan(&w, &cost, &mut per_access, 100..3_000, |_| {});
        assert_eq!(clock.seconds(), per_access.seconds());
    }

    #[test]
    fn functional_is_much_slower_than_vff() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut func = HostClock::new();
        functional_scan(&w, &cost, &mut func, 0..10_000, |_| {});
        let mut vff = HostClock::new();
        fast_forward(&cost, &mut vff, 0, 10_000 * w.mem_period());
        assert!(func.seconds() > 100.0 * vff.seconds());
    }

    #[test]
    fn watchpoint_scan_finds_watched_lines_and_counts_false_positives() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        // Watch the line of access #500.
        let target = w.access_at(500).line();
        let mut watch = WatchSet::new();
        watch.watch_line(target);
        let mut hits = Vec::new();
        let stats = watchpoint_scan(&w, &cost, &mut clock, 0..1_000, &mut watch, |a, _| {
            hits.push(a.index)
        });
        assert!(hits.contains(&500));
        assert_eq!(stats.true_hits as usize, hits.len());
        assert_eq!(stats.accesses_scanned, 1_000);
        // hmmer's hot set shares pages: expect some false positives.
        assert!(stats.false_positives > 0, "no false positives observed");
    }

    #[test]
    fn on_hit_may_remove_watchpoints() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let target = w.access_at(500).line();
        let mut watch = WatchSet::new();
        watch.watch_line(target);
        let mut first_hit = None;
        watchpoint_scan(&w, &cost, &mut clock, 0..2_000, &mut watch, |a, ws| {
            if first_hit.is_none() {
                first_hit = Some(a.index);
                ws.unwatch_line(a.line());
            }
        });
        assert!(first_hit.is_some());
        assert!(watch.is_empty());
    }

    #[test]
    fn empty_watch_set_scans_trap_free() {
        let w = demo_workload();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let mut watch = WatchSet::new();
        let stats = watchpoint_scan(&w, &cost, &mut clock, 0..5_000, &mut watch, |_, _| {
            panic!("no hits expected")
        });
        assert_eq!(stats.traps(), 0);
        // Pure VFF cost.
        let expect = cost.instr_seconds(WorkKind::Vff, 5_000 * w.mem_period());
        assert!((clock.seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn scan_stats_merge() {
        let mut a = WatchScanStats {
            accesses_scanned: 10,
            false_positives: 2,
            true_hits: 1,
        };
        a.merge(&WatchScanStats {
            accesses_scanned: 5,
            false_positives: 1,
            true_hits: 4,
        });
        assert_eq!(a.accesses_scanned, 15);
        assert_eq!(a.traps(), 8);
    }

    #[test]
    fn watch_line_import() {
        // Silence unused-import lint paths in this module.
        let _ = LineAddr(0);
    }
}
