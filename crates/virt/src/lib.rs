//! Virtualized execution substrate and host cost accounting.
//!
//! In the paper, DeLorean runs on real hardware: KVM fast-forwards between
//! detailed regions at near-native speed, and reuse distances are sampled
//! with watchpoints built on the OS page-protection mechanism. Neither is
//! available to a trace-driven reproduction, so this crate provides the
//! closest synthetic equivalents:
//!
//! * [`fast_forward`] — an O(1) skip over the position-addressable trace
//!   (the workload needs no warm state besides its position), charged at
//!   near-native MIPS in the [`CostModel`];
//! * [`functional_scan`] — access-by-access functional simulation at
//!   gem5-atomic-like speed (used for functional warming and Explorer-1's
//!   directed profiling);
//! * [`WatchSet`] + [`watchpoint_scan`] — virtualized directed profiling:
//!   watchpoints are registered per *line* but trap per *page*, so false
//!   positives (a trap on a watched page whose line is not watched) are an
//!   emergent property of workload layout, exactly the effect that makes
//!   povray expensive in the paper;
//! * [`HostClock`] / [`RunCost`] — seconds-based cost accounting, with
//!   pipelined wall-clock estimation for the multi-pass TT pipeline and
//!   per-worker wall-clock modeling for the region-parallel runtime:
//!   each region unit records its chained-lane vs parallel-lane cost as
//!   a [`UnitCost`], and
//!   [`RunCost::region_parallel_wallclock`] list-schedules the units
//!   onto any worker count deterministically — speedup curves that do
//!   not depend on the host the run executed on.
//!
//! The absolute constants in [`CostModel::paper_host`] are calibrated to
//! the paper's platform-level observations (functional warming ≈ 1.4 MIPS,
//! VFF near-native on a 2.26 GHz Xeon, microsecond-scale trap handling).
//! All speed *ratios* in the experiments emerge from mechanism work, not
//! from per-benchmark tuning.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod cost;
mod engines;
mod watch;

pub use clock::{HostClock, PassCost, RunCost, SpecUnit, UnitCost};
pub use cost::{mips, CostModel, WorkKind};
pub use engines::{
    fast_forward, functional_scan, functional_scan_batched, watchpoint_scan, WatchScanStats,
};
pub use watch::{Trap, WatchSet};
