//! End-to-end engine tests over on-disk fixture workspaces: each test
//! materializes a minimal workspace in a temp directory, runs the full
//! [`Engine`], and checks which diagnostics survive waiver application.

use delorean_lint::Engine;
use std::path::PathBuf;

/// A throwaway fixture workspace; the directory is removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// A one-member workspace whose member is named `package` (package
    /// names drive the hot/lib/bench policy) with `lib_src` as its
    /// `src/lib.rs`. Both manifests opt into the shared lint table so
    /// `workspace-lints` stays quiet unless a test wants otherwise.
    fn new(tag: &str, package: &str, lib_src: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "delorean-lint-fixture-{}-{tag}",
            std::process::id()
        ));
        let member = root.join("member");
        std::fs::create_dir_all(member.join("src")).expect("fixture dirs");
        std::fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"member\"]\n\n[workspace.lints.rust]\nunsafe_op_in_unsafe_fn = \"deny\"\n",
        )
        .expect("root manifest");
        std::fs::write(
            member.join("Cargo.toml"),
            format!(
                "[package]\nname = \"{package}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[lints]\nworkspace = true\n"
            ),
        )
        .expect("member manifest");
        std::fs::write(member.join("src/lib.rs"), lib_src).expect("member lib");
        Fixture { root }
    }

    fn run(&self) -> delorean_lint::Report {
        Engine::new(&self.root).run().expect("engine run")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn rules_of(report: &delorean_lint::Report) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn hot_crate_violations_are_reported() {
    let fx = Fixture::new(
        "violations",
        "delorean_trace",
        "use std::collections::HashMap;\n\
         pub fn f() -> u32 {\n\
             let m: HashMap<u64, u64> = HashMap::new();\n\
             let t = std::time::Instant::now();\n\
             let x: Option<u32> = m.get(&1).map(|v| *v as u32);\n\
             let _ = t;\n\
             x.unwrap()\n\
         }\n",
    );
    let report = fx.run();
    let rules = rules_of(&report);
    assert!(rules.contains(&"no-std-hash"), "got {rules:?}");
    assert!(rules.contains(&"no-wallclock"), "got {rules:?}");
    assert!(rules.contains(&"no-unwrap"), "got {rules:?}");
    assert!(!report.is_clean());
}

#[test]
fn bench_crate_may_read_the_wallclock() {
    let fx = Fixture::new(
        "bench-clock",
        "delorean_bench",
        "pub fn now_ms() -> u128 {\n\
             std::time::Instant::now().elapsed().as_millis()\n\
         }\n",
    );
    let report = fx.run();
    assert!(report.is_clean(), "got {:?}", report.diagnostics);
}

#[test]
fn justified_waiver_suppresses_the_finding() {
    let fx = Fixture::new(
        "waived",
        "delorean_trace",
        "pub fn f(x: Option<u32>) -> u32 {\n\
             // lint:allow(no-unwrap): fixture invariant makes None impossible\n\
             x.unwrap()\n\
         }\n",
    );
    let report = fx.run();
    assert!(report.is_clean(), "got {:?}", report.diagnostics);
    assert_eq!(report.waivers.len(), 1);
    assert!(report.waivers[0].used, "waiver should be marked used");
}

#[test]
fn waiver_without_justification_is_rejected() {
    let fx = Fixture::new(
        "bare-waiver",
        "delorean_trace",
        "pub fn f(x: Option<u32>) -> u32 {\n\
             // lint:allow(no-unwrap)\n\
             x.unwrap()\n\
         }\n",
    );
    let report = fx.run();
    let rules = rules_of(&report);
    // The unjustified waiver is itself flagged AND does not suppress.
    assert!(rules.contains(&"bad-waiver"), "got {rules:?}");
    assert!(rules.contains(&"no-unwrap"), "got {rules:?}");
}

#[test]
fn waiver_naming_an_unknown_rule_is_rejected() {
    let fx = Fixture::new(
        "unknown-rule",
        "delorean_trace",
        "// lint:allow(no-such-rule): reads fine but means nothing\n\
         pub fn f() {}\n",
    );
    let report = fx.run();
    assert_eq!(rules_of(&report), vec!["bad-waiver"]);
}

#[test]
fn missing_lint_table_optin_is_flagged() {
    let fx = Fixture::new("no-optin", "delorean_trace", "pub fn f() {}\n");
    // Overwrite the member manifest without the [lints] opt-in.
    std::fs::write(
        fx.root.join("member/Cargo.toml"),
        "[package]\nname = \"delorean_trace\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("rewrite manifest");
    let report = fx.run();
    assert_eq!(rules_of(&report), vec!["workspace-lints"]);
}

#[test]
fn unsafe_needs_an_adjacent_safety_comment() {
    let dirty = Fixture::new(
        "unsafe-bare",
        "delorean_trace",
        "pub fn f(p: *const u8) -> u8 {\n\
             unsafe { *p }\n\
         }\n",
    );
    assert_eq!(rules_of(&dirty.run()), vec!["safety-comment"]);

    let clean = Fixture::new(
        "unsafe-annotated",
        "delorean_trace",
        "pub fn f(p: *const u8) -> u8 {\n\
             // SAFETY: caller passes a live, aligned pointer\n\
             unsafe { *p }\n\
         }\n",
    );
    assert!(clean.run().is_clean());
}

#[test]
fn json_report_is_well_formed_enough_to_grep() {
    let fx = Fixture::new(
        "json",
        "delorean_trace",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let json = fx.run().render_json();
    assert!(json.contains("\"diagnostics\""), "got {json}");
    assert!(json.contains("\"no-unwrap\""), "got {json}");
    assert!(json.contains("\"files_scanned\""), "got {json}");
}
