//! The workspace must stay clean under its own lint: this is the same
//! gate CI runs via `cargo run -p delorean-lint`, expressed as a test so
//! `cargo test` alone catches a regression.

use delorean_lint::Engine;

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = Engine::new(&root).run().expect("scan workspace");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
    // Zero *un-justified* waivers: every waiver in effect must carry a
    // reason (an empty one would already be a bad-waiver diagnostic, so
    // this is belt-and-braces against engine regressions).
    for w in &report.waivers {
        assert!(
            !w.reason.is_empty(),
            "waiver for `{}` at {}:{} has no justification",
            w.rule,
            w.path,
            w.line
        );
    }
    // The scan actually covered the workspace, not an empty directory.
    assert!(
        report.files_scanned > 100,
        "only {} files",
        report.files_scanned
    );
    assert!(
        report.crates_scanned >= 16,
        "only {} crates",
        report.crates_scanned
    );
}
