//! Diagnostics and report rendering: rustc-style text for humans, a
//! hand-rolled JSON document for CI artifacts (the workspace is
//! offline, so no serde_json — the writer below covers exactly what the
//! report needs).

use std::fmt::Write as _;

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule identifier (`no-std-hash`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// One-line explanation.
    pub message: String,
}

/// A waiver as it appears in the JSON report.
#[derive(Clone, Debug)]
pub struct ReportWaiver {
    /// Rule the waiver covers.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// The justification text.
    pub reason: String,
    /// Whether the waiver suppressed at least one diagnostic.
    pub used: bool,
}

/// The complete result of one lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived waiver application, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver in the workspace (used or not).
    pub waivers: Vec<ReportWaiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
}

impl Report {
    /// `true` when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the rustc-style human report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "error[delorean::{}]: {}", d.rule, d.message);
            let _ = writeln!(out, "  --> {}:{}:{}", d.path, d.line, d.col);
        }
        let mut by_rule: Vec<(&str, usize)> = Vec::new();
        for d in &self.diagnostics {
            match by_rule.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((d.rule, 1)),
            }
        }
        let _ = writeln!(
            out,
            "delorean-lint: {} diagnostic(s) across {} file(s) in {} crate(s); {} waiver(s) in effect",
            self.diagnostics.len(),
            self.files_scanned,
            self.crates_scanned,
            self.waivers.iter().filter(|w| w.used).count(),
        );
        for (rule, n) in by_rule {
            let _ = writeln!(out, "  {n:>4}  {rule}");
        }
        out
    }

    /// Render the machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"crates_scanned\": {},", self.crates_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message)
            );
            out.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"used\": {}, \"reason\": {}}}",
                json_str(&w.rule),
                json_str(&w.path),
                w.line,
                w.used,
                json_str(&w.reason)
            );
            out.push_str(if i + 1 < self.waivers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escape `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_shapes() {
        let mut r = Report {
            files_scanned: 2,
            crates_scanned: 1,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"clean\": true"));
        r.diagnostics.push(Diagnostic {
            rule: "no-unwrap",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "library code must not unwrap".into(),
        });
        let text = r.render_text();
        assert!(text.contains("error[delorean::no-unwrap]"));
        assert!(text.contains("--> crates/x/src/lib.rs:3:9"));
        let json = r.render_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"line\": 3"));
    }
}
