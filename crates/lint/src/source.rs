//! Per-file analysis context: lexed tokens plus the derived facts the
//! rules share — `#[cfg(test)]` extents, `// lint:allow` waivers, and a
//! per-file declaration table used to infer integer widths and float
//! types without a real type system.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use crate::policy::{CrateKind, FileClass};
use std::collections::BTreeMap;

/// A `// lint:allow(<rule>): <reason>` waiver found in a comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The mandatory justification after the closing parenthesis.
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// The code line the waiver covers (same line, or the next line for
    /// a standalone comment).
    pub covers: u32,
    /// Whether the waiver ever matched a diagnostic (filled by the
    /// engine; unused waivers are reported but not fatal).
    pub used: bool,
}

/// Integer/float width facts harvested from same-file declarations.
///
/// `let x: u64`, fn parameters, struct fields and `fn f(...) -> u64`
/// return types all contribute. An identifier declared with two
/// different widths in one file becomes *unknown* — the cast rule only
/// acts on unambiguous facts.
#[derive(Clone, Debug, Default)]
pub struct DeclTable {
    /// Identifier → bit width (usize/isize recorded as 64: the widest
    /// they can be on a supported target).
    pub int_width: BTreeMap<String, u32>,
    /// Function name → return bit width, same convention.
    pub fn_width: BTreeMap<String, u32>,
    /// Identifiers declared (or initialized) as `f32`/`f64`.
    pub floats: BTreeMap<String, ()>,
}

/// One fully-analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (diagnostics use this).
    pub rel_path: String,
    /// Package name of the owning crate (`delorean_trace`, ...).
    pub crate_name: String,
    /// Policy group of the owning crate.
    pub crate_kind: CrateKind,
    /// Which compilation class the file belongs to (lib, tests, ...).
    pub class: FileClass,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// `lines[i]` is `true` when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Waivers by covered line.
    pub waivers: Vec<Waiver>,
    /// Same-file declaration facts.
    pub decls: DeclTable,
    /// Number of source lines.
    pub line_count: u32,
}

/// Integer type names the width rules understand, with source widths
/// (usize/isize count as 64: the widest a supported target makes them).
pub fn int_width_of(name: &str) -> Option<u32> {
    Some(match name {
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" => 32,
        "u64" | "i64" | "usize" | "isize" => 64,
        "u128" | "i128" => 128,
        _ => return None,
    })
}

/// Destination width of a cast target: `usize`/`isize` count as 32 —
/// the narrowest a supported target may make them — so `u64 as usize`
/// is lossy (the PR 2 `size_hint` bug class) while `u32 as usize` is
/// not.
pub fn cast_dest_width(name: &str) -> Option<u32> {
    match name {
        "usize" | "isize" => Some(32),
        other => int_width_of(other),
    }
}

impl SourceFile {
    /// Analyze `src`.
    pub fn analyze(
        rel_path: String,
        crate_name: String,
        crate_kind: CrateKind,
        class: FileClass,
        src: &str,
    ) -> SourceFile {
        let lexed = lex(src);
        let line_count = src.lines().count() as u32;
        let test_lines = mark_test_regions(&lexed.tokens, line_count);
        let waivers = collect_waivers(&lexed.comments, &lexed.tokens);
        let decls = collect_decls(&lexed.tokens);
        SourceFile {
            rel_path,
            crate_name,
            crate_kind,
            class,
            lexed,
            test_lines,
            waivers,
            decls,
            line_count,
        }
    }

    /// `true` when 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The code tokens of the file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// `true` when a comment block satisfying `pred` ends on `line`
    /// itself or directly above it (attribute-only lines in between are
    /// skipped, so `// SAFETY:` above `#[cfg(...)]` still counts).
    pub fn comment_adjacent(&self, line: u32, pred: impl Fn(&Comment) -> bool) -> bool {
        // Same-line trailing comment.
        if self
            .lexed
            .comments
            .iter()
            .any(|c| c.line == line && pred(c))
        {
            return true;
        }
        // Walk upward through contiguous comment/attribute lines.
        let mut want = line.saturating_sub(1);
        while want > 0 {
            if let Some(c) = self.lexed.comments.iter().find(|c| c.end_line == want) {
                if pred(c) {
                    return true;
                }
                want = c.line.saturating_sub(1);
                continue;
            }
            if self.line_is_attribute_only(want) {
                want -= 1;
                continue;
            }
            return false;
        }
        false
    }

    /// `true` when every code token on `line` belongs to an attribute
    /// (`#[...]`) and the line holds at least one token.
    fn line_is_attribute_only(&self, line: u32) -> bool {
        let on_line: Vec<&Token> = self.tokens().iter().filter(|t| t.line == line).collect();
        if on_line.is_empty() {
            return false;
        }
        on_line[0].is_punct('#')
    }
}

/// Walk the token stream marking the line extents of `#[cfg(test)]`
/// items (normally `mod tests { ... }`, but any attributed item works).
fn mark_test_regions(tokens: &[Token], line_count: u32) -> Vec<bool> {
    let mut marked = vec![false; line_count as usize];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        // Find the matching `]` and check for a `cfg ( test` prefix.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test = false;
        let mut seen: Vec<&str> = Vec::new();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                seen.push(&t.text);
            }
            j += 1;
        }
        if seen.first() == Some(&"cfg") && seen.contains(&"test") {
            is_test = true;
        }
        if !is_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then span the item: up to the
        // first `;` at depth 0 (e.g. `#[cfg(test)] use ...;`) or the
        // matching `}` of the first `{`.
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 0usize;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let mut end_line = attr_start_line;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                brace_depth += 1;
            } else if t.is_punct('}') {
                brace_depth -= 1;
                if brace_depth == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && brace_depth == 0 {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            k += 1;
        }
        for line in attr_start_line..=end_line {
            if let Some(slot) = marked.get_mut(line.saturating_sub(1) as usize) {
                *slot = true;
            }
        }
        i = k + 1;
    }
    marked
}

/// Extract `lint:allow(<rule>): <reason>` waivers from comments.
///
/// Doc comments are excluded: a waiver is a directive, not
/// documentation, so `lint:allow(...)` mentioned in a `///`/`//!` block
/// (the lint crate's own docs, say) never suppresses anything.
fn collect_waivers(comments: &[Comment], tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let after = &c.text[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rule = after[..close].trim().to_string();
        let rest = after[close + 1..].trim_start();
        let reason = rest
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        // A trailing comment covers its own line; a standalone comment
        // covers the next line that has code on it.
        let has_code_on_line = tokens.iter().any(|t| t.line == c.line);
        let covers = if has_code_on_line {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line + 1)
        };
        out.push(Waiver {
            rule,
            reason,
            line: c.line,
            covers,
            used: false,
        });
    }
    out
}

/// Harvest `ident: <type>` and `fn name(...) -> <type>` declarations.
fn collect_decls(tokens: &[Token]) -> DeclTable {
    let mut decls = DeclTable::default();
    let mut int_conflicts: BTreeMap<String, ()> = BTreeMap::new();
    let mut fn_conflicts: BTreeMap<String, ()> = BTreeMap::new();
    for w in tokens.windows(3) {
        // `name : u64` — let bindings, fn params, struct fields alike.
        if w[0].kind == TokKind::Ident && w[1].is_punct(':') && w[2].kind == TokKind::Ident {
            let name = w[0].text.clone();
            if let Some(width) = int_width_of(&w[2].text) {
                match decls.int_width.get(&name) {
                    Some(&prev) if prev != width => {
                        int_conflicts.insert(name, ());
                    }
                    _ => {
                        decls.int_width.insert(name, width);
                    }
                }
            } else if w[2].text == "f64" || w[2].text == "f32" {
                decls.floats.insert(name, ());
            }
        }
        // `let [mut] name = 1.0...` — float by initializer.
        if w[0].kind == TokKind::Ident
            && w[1].is_punct('=')
            && w[2].kind == TokKind::Num
            && looks_float(&w[2].text)
        {
            decls.floats.insert(w[0].text.clone(), ());
        }
    }
    // `fn name ( ... ) -> u64` — scan with explicit paren matching.
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 2 < tokens.len() && tokens[i + 2].is_punct('(') {
            let name = tokens[i + 1].text.clone();
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if j + 3 < tokens.len()
                && tokens[j + 1].is_punct('-')
                && tokens[j + 2].is_punct('>')
                && tokens[j + 3].kind == TokKind::Ident
            {
                if let Some(width) = int_width_of(&tokens[j + 3].text) {
                    match decls.fn_width.get(&name) {
                        Some(&prev) if prev != width => {
                            fn_conflicts.insert(name.clone(), ());
                        }
                        _ => {
                            decls.fn_width.insert(name, width);
                        }
                    }
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    for name in int_conflicts.keys() {
        decls.int_width.remove(name);
    }
    for name in fn_conflicts.keys() {
        decls.fn_width.remove(name);
    }
    // Builtins whose return width is known without a local declaration.
    decls.fn_width.entry("len".into()).or_insert(64);
    decls.fn_width.entry("capacity".into()).or_insert(64);
    decls
}

fn looks_float(num: &str) -> bool {
    num.ends_with("f64") || num.ends_with("f32") || (num.contains('.') && !num.starts_with("0x"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyze(
            "x.rs".into(),
            "test_crate".into(),
            CrateKind::Hot,
            FileClass::Lib,
            src,
        )
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = file(src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_test_use_statement_spans_one_line() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = file(src);
        assert!(f.in_test_region(2));
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn other_cfg_attributes_are_not_test() {
        let f = file("#[cfg(feature = \"x\")]\nfn live() {}\n");
        assert!(!f.in_test_region(2));
    }

    #[test]
    fn waiver_parsing_trailing_and_standalone() {
        let src = "let a = x.unwrap(); // lint:allow(no-unwrap): guarded by is_some above\n\
                   // lint:allow(lossy-cast): masked to 8 bits\n\
                   let b = y as u8;\n\
                   // lint:allow(no-unwrap)\n\
                   let c = z.unwrap();\n";
        let f = file(src);
        assert_eq!(f.waivers.len(), 3);
        assert_eq!(f.waivers[0].rule, "no-unwrap");
        assert_eq!(f.waivers[0].covers, 1);
        assert!(f.waivers[0].reason.contains("guarded"));
        assert_eq!(f.waivers[1].covers, 3);
        assert!(f.waivers[2].reason.is_empty(), "missing justification");
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        let src = "/// Example: `// lint:allow(no-unwrap): guarded`\n\
                   //! Also not a waiver: lint:allow(lossy-cast): masked\n\
                   fn documented() {}\n";
        let f = file(src);
        assert!(f.waivers.is_empty(), "doc comments are not directives");
    }

    #[test]
    fn decl_table_widths_and_floats() {
        let src = "struct S { ways: u32, total: f64 }\n\
                   fn read_u32(b: &[u8]) -> u32 { 0 }\n\
                   fn f(k: u64) { let mut acc = 0.0; let n: usize = 3; }\n";
        let f = file(src);
        assert_eq!(f.decls.int_width.get("ways"), Some(&32));
        assert_eq!(f.decls.int_width.get("k"), Some(&64));
        assert_eq!(f.decls.int_width.get("n"), Some(&64));
        assert_eq!(f.decls.fn_width.get("read_u32"), Some(&32));
        assert!(f.decls.floats.contains_key("total"));
        assert!(f.decls.floats.contains_key("acc"));
    }

    #[test]
    fn conflicting_widths_become_unknown() {
        let f = file("fn a(x: u64) {}\nfn b(x: u32) {}\n");
        assert_eq!(f.decls.int_width.get("x"), None);
    }

    #[test]
    fn comment_adjacency() {
        let src = "// SAFETY: sole writer of slot i\nunsafe { put(i) };\n\
                   \n\
                   unsafe { naked() };\n";
        let f = file(src);
        assert!(f.comment_adjacent(2, |c| c.text.contains("SAFETY:")));
        assert!(!f.comment_adjacent(4, |c| c.text.contains("SAFETY:")));
    }

    #[test]
    fn comment_adjacency_skips_attributes() {
        let src = "// SAFETY: read-only mapping\n#[cfg(unix)]\nunsafe impl Send for M {}\n";
        let f = file(src);
        assert!(f.comment_adjacent(3, |c| c.text.contains("SAFETY:")));
    }
}
