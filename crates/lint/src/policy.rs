//! Per-crate lint policy: which rules bind where.
//!
//! The workspace's determinism contract is not uniform — the hot
//! simulation crates must be order-deterministic and panic-free, the
//! bench harness is *supposed* to read wall clocks, and the compat
//! shims mirror third-party APIs whose panicking contracts they cannot
//! change. This module encodes that split in one place so every rule
//! asks the same question: *does this rule bind for this file?*

/// Policy group of a crate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrateKind {
    /// Hot simulation crates carrying the determinism contract:
    /// `delorean_trace`, `delorean_cache`, `delorean_core`,
    /// `delorean_statmodel`, `delorean_sampling`, `delorean_virt`.
    Hot,
    /// Library crates outside the per-access hot path (`delorean_cpu`,
    /// the root `delorean` facade, `delorean_lint`'s own library).
    Lib,
    /// The measurement harness (`delorean_bench`): wall clocks and
    /// `expect` on I/O are its job.
    Bench,
    /// Offline stand-ins for third-party crates (`crates/compat/*`):
    /// they mirror external API contracts, including panics, but still
    /// carry the safety-comment contract.
    Compat,
}

/// Which compilation class a `.rs` file belongs to within its crate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` library code (minus `src/bin/`).
    Lib,
    /// `src/bin/` or a single-file binary target.
    Bin,
    /// `tests/` integration tests.
    Tests,
    /// `benches/` benchmarks.
    Benches,
    /// `examples/`.
    Examples,
}

impl FileClass {
    /// Human-readable name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            FileClass::Lib => "lib",
            FileClass::Bin => "bin",
            FileClass::Tests => "tests",
            FileClass::Benches => "benches",
            FileClass::Examples => "examples",
        }
    }
}

/// Classify a package name into its policy group.
pub fn crate_kind(package: &str) -> CrateKind {
    match package {
        "delorean_trace" | "delorean_cache" | "delorean_core" | "delorean_statmodel"
        | "delorean_sampling" | "delorean_virt" => CrateKind::Hot,
        "delorean_bench" => CrateKind::Bench,
        // The compat shims keep their upstream names.
        "serde" | "serde_derive" | "crossbeam" | "rayon" | "criterion" | "memmap2" => {
            CrateKind::Compat
        }
        _ => CrateKind::Lib,
    }
}

/// The crates whose float accumulation must flow through the fixed
/// summation-tree helpers (`sampling::driver::reduce_units` feeding
/// `virt::HostClock`/`RunCost`): everything that aggregates *across*
/// region units. `delorean_statmodel` is exempt — its float math is
/// per-access model arithmetic evaluated in a fixed sequential order,
/// never a cross-worker reduction.
pub fn float_accum_binds(package: &str) -> bool {
    matches!(
        package,
        "delorean_sampling" | "delorean_core" | "delorean_virt"
    )
}

/// The crates whose integer casts must be provably lossless or go
/// through `delorean_trace::cast` helpers: the two per-access hot-path
/// crates where a silent truncation corrupts simulation state rather
/// than a report string.
pub fn lossy_cast_binds(package: &str) -> bool {
    matches!(package, "delorean_trace" | "delorean_cache")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups() {
        assert_eq!(crate_kind("delorean_trace"), CrateKind::Hot);
        assert_eq!(crate_kind("delorean_cpu"), CrateKind::Lib);
        assert_eq!(crate_kind("delorean"), CrateKind::Lib);
        assert_eq!(crate_kind("delorean_bench"), CrateKind::Bench);
        assert_eq!(crate_kind("memmap2"), CrateKind::Compat);
        assert!(float_accum_binds("delorean_virt"));
        assert!(!float_accum_binds("delorean_statmodel"));
        assert!(lossy_cast_binds("delorean_cache"));
        assert!(!lossy_cast_binds("delorean_core"));
    }
}
