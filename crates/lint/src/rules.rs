//! The rule registry: each rule is a token-level check over one
//! [`SourceFile`], scoped by the [`policy`](crate::policy) tables.
//!
//! Rules deliberately favor *precision over recall* — a finding must be
//! actionable, so width inference only fires on unambiguous same-file
//! facts and unknown-width casts are skipped rather than guessed. The
//! runtime determinism oracles (`tests/determinism.rs`,
//! `tests/tiled_determinism.rs`) remain the backstop for what the
//! static pass cannot see.

use crate::lexer::{TokKind, Token};
use crate::policy::{float_accum_binds, lossy_cast_binds, CrateKind, FileClass};
use crate::report::Diagnostic;
use crate::source::{cast_dest_width, int_width_of, SourceFile};

/// A single lint rule.
pub trait Rule {
    /// Stable identifier used in diagnostics and waivers.
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` output.
    fn description(&self) -> &'static str;
    /// Scan `file`, pushing findings into `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every rule, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoStdHash),
        Box::new(NoWallclock),
        Box::new(FloatAccum),
        Box::new(SafetyComment),
        Box::new(NoUnwrap),
        Box::new(LossyCast),
    ]
}

/// Rule identifiers the engine accepts in waivers (includes the
/// engine-level rules that have no [`Rule`] object).
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = registry().iter().map(|r| r.id()).collect();
    ids.push("workspace-lints");
    ids
}

fn diag(file: &SourceFile, rule: &'static str, t: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// `no-std-hash`: the hot crates must not touch `std::collections`'
/// randomized hash tables — iteration order varies per process, which
/// is exactly the nondeterminism the `FlatMap`/`FlatSet` substrate
/// exists to rule out. Binds to every file class of hot crates (test
/// helpers seed oracles and fixtures, so they carry the contract too).
struct NoStdHash;

impl Rule for NoStdHash {
    fn id(&self) -> &'static str {
        "no-std-hash"
    }

    fn description(&self) -> &'static str {
        "deny std HashMap/HashSet in hot crates; use delorean_trace's FlatMap/FlatSet substrate"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.crate_kind != CrateKind::Hot {
            return;
        }
        for t in file.tokens() {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "std::collections::{} iterates in a process-random order; use \
                         FlatMap/FlatSet (delorean_trace::collections) or waive with a \
                         justification proving no order-dependent iteration",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// `no-wallclock`: reading the host clock anywhere but the bench
/// harness makes results time-dependent. Modeled cost lives in
/// `delorean_virt::HostClock`; real time belongs to `delorean_bench`
/// (and the criterion shim it drives).
struct NoWallclock;

impl Rule for NoWallclock {
    fn id(&self) -> &'static str {
        "no-wallclock"
    }

    fn description(&self) -> &'static str {
        "deny Instant::now/SystemTime outside the bench harness"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.crate_kind == CrateKind::Bench || file.crate_name == "criterion" {
            return;
        }
        let toks = file.tokens();
        for (i, t) in toks.iter().enumerate() {
            let hit = t.is_ident("SystemTime")
                || (t.is_ident("Instant")
                    && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|a| a.is_ident("now")));
            if hit {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "{} reads the host clock; results must depend only on inputs — \
                         charge modeled cost to delorean_virt::HostClock, or move the \
                         measurement into delorean_bench",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// `float-accum`: cross-unit float accumulation must flow through the
/// plan-ordered summation helpers (`sampling::driver::reduce_units`
/// into `virt::HostClock`/`RunCost`), where the fold order is fixed
/// regardless of worker count. Detects compound assignment to
/// identifiers declared `f32`/`f64` in the same file, plus
/// `.sum::<f64>()`-style typed folds.
struct FloatAccum;

impl Rule for FloatAccum {
    fn id(&self) -> &'static str {
        "float-accum"
    }

    fn description(&self) -> &'static str {
        "deny ad-hoc float accumulation outside the fixed summation-tree helpers"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !float_accum_binds(&file.crate_name) || file.class != FileClass::Lib {
            return;
        }
        let toks = file.tokens();
        for (i, t) in toks.iter().enumerate() {
            if file.in_test_region(t.line) {
                continue;
            }
            // `acc += x` / `-=` / `*=` / `/=` on a known-float target.
            if t.kind == TokKind::Ident
                && file.decls.floats.contains_key(&t.text)
                && toks.get(i + 1).is_some_and(|a| {
                    a.is_punct('+') || a.is_punct('-') || a.is_punct('*') || a.is_punct('/')
                })
                && toks.get(i + 2).is_some_and(|a| a.is_punct('='))
                && toks[i + 1].line == toks[i + 2].line
                && toks[i + 1].col + 1 == toks[i + 2].col
            {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "compound float accumulation into `{}`; route cross-unit sums \
                         through the plan-ordered reduce_units/HostClock helpers or waive \
                         with a justification that the fold order is worker-count-invariant",
                        t.text
                    ),
                ));
            }
            // `.sum::<f64>()` / `.product::<f32>()`.
            if (t.is_ident("sum") || t.is_ident("product"))
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_punct('<'))
                && toks
                    .get(i + 4)
                    .is_some_and(|a| a.is_ident("f64") || a.is_ident("f32"))
            {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "iterator `.{}::<float>()` folds in iteration order; if the order \
                         is plan-fixed, waive with that justification, otherwise use the \
                         summation-tree helpers",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// `safety-comment`: every `unsafe` keyword — block, fn, impl — must
/// sit next to a comment stating the upheld invariant: `// SAFETY:` (or
/// a `# Safety` doc section) on the same line, or in the comment block
/// directly above (attributes in between are fine).
struct SafetyComment;

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        "safety-comment"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/fn/impl requires an adjacent SAFETY comment"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for t in file.tokens() {
            if !t.is_ident("unsafe") {
                continue;
            }
            let ok = file.comment_adjacent(t.line, |c| {
                c.text.contains("SAFETY:") || c.text.contains("# Safety")
            });
            if !ok {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    "`unsafe` without an adjacent `// SAFETY:` comment (or `# Safety` doc \
                     section) stating the invariant the caller/block upholds"
                        .to_string(),
                ));
            }
        }
    }
}

/// `no-unwrap`: library code must surface failures through the typed
/// error contract (e.g. `TileError`), not abort the process. Binds to
/// `src/` library code of the hot and lib crates, outside
/// `#[cfg(test)]`; bins, tests, benches and the compat shims (which
/// mirror panicking third-party APIs) are exempt.
struct NoUnwrap;

impl Rule for NoUnwrap {
    fn id(&self) -> &'static str {
        "no-unwrap"
    }

    fn description(&self) -> &'static str {
        "deny unwrap()/expect()/panic! in library crates; use typed errors"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !matches!(file.crate_kind, CrateKind::Hot | CrateKind::Lib)
            || file.class != FileClass::Lib
        {
            return;
        }
        let toks = file.tokens();
        for (i, t) in toks.iter().enumerate() {
            if file.in_test_region(t.line) {
                continue;
            }
            let method_call = |name: &str| {
                t.is_ident(name)
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            };
            if method_call("unwrap") || method_call("expect") {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "`.{}()` can abort the process; return a typed error, restructure \
                         so the invariant is expressed in the types, or waive with the \
                         invariant that makes failure impossible",
                        t.text
                    ),
                ));
            }
            if t.is_ident("panic") && toks.get(i + 1).is_some_and(|a| a.is_punct('!')) {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    "`panic!` in library code; return a typed error or waive with the \
                     invariant that makes this unreachable"
                        .to_string(),
                ));
            }
        }
    }
}

/// `lossy-cast`: in the hot crates, an `as` cast between integer types
/// must be provably lossless. Source widths come from same-file
/// declarations (`let`/params/fields/`fn ... -> u64` returns, plus
/// `len()`/`capacity()` builtins); `usize` counts as 64-bit as a source
/// and 32-bit as a destination, so `u64 as usize` — the PR 2
/// `size_hint` bug class — is lossy while `u32 as usize` is not.
/// Unknown-width sources are skipped: precision over recall.
struct LossyCast;

impl LossyCast {
    /// Width of the cast source ending at token index `i` (exclusive).
    fn source_width(file: &SourceFile, i: usize) -> Option<u32> {
        let toks = file.tokens();
        let prev = toks.get(i.checked_sub(1)?)?;
        match prev.kind {
            TokKind::Num => {
                let txt = &prev.text;
                [
                    "u8", "i8", "u16", "i16", "u32", "i32", "u64", "i64", "usize", "isize",
                ]
                .iter()
                .find(|s| txt.ends_with(*s))
                .and_then(|s| int_width_of(s))
            }
            TokKind::Ident => file.decls.int_width.get(&prev.text).copied(),
            TokKind::Punct if prev.is_punct(')') => {
                // Match back to the opening paren.
                let mut depth = 0usize;
                let mut j = i - 1;
                loop {
                    if toks[j].is_punct(')') {
                        depth += 1;
                    } else if toks[j].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                // `f(...) as T` / `x.f(...) as T`: the call's return width.
                if j >= 1 && toks[j - 1].kind == TokKind::Ident {
                    return file.decls.fn_width.get(&toks[j - 1].text).copied();
                }
                // `(expr) as T`: the last inner cast decides, if any.
                let mut width = None;
                let mut d = 0usize;
                for k in j + 1..i - 1 {
                    if toks[k].is_punct('(') {
                        d += 1;
                    } else if toks[k].is_punct(')') {
                        d = d.saturating_sub(1);
                    } else if d == 0
                        && toks[k].is_ident("as")
                        && k + 1 < i - 1
                        && toks[k + 1].kind == TokKind::Ident
                    {
                        width = int_width_of(&toks[k + 1].text).or(width);
                    }
                }
                width
            }
            _ => None,
        }
    }
}

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "lossy-cast"
    }

    fn description(&self) -> &'static str {
        "deny lossy `as` integer casts in hot crates; use delorean_trace::cast helpers"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !lossy_cast_binds(&file.crate_name) || file.class != FileClass::Lib {
            return;
        }
        let toks = file.tokens();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("as") || file.in_test_region(t.line) {
                continue;
            }
            let Some(dest) = toks.get(i + 1) else {
                continue;
            };
            let Some(dw) = cast_dest_width(&dest.text) else {
                continue;
            };
            let Some(sw) = Self::source_width(file, i) else {
                continue;
            };
            if sw > dw {
                out.push(diag(
                    file,
                    self.id(),
                    t,
                    format!(
                        "lossy integer cast ({sw}-bit source `as {}`); use the checked or \
                         explicitly-truncating helpers in delorean_trace::cast, or waive \
                         with the bound that makes the value fit",
                        dest.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::crate_kind;

    fn check_src(package: &str, class: FileClass, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::analyze(
            "x.rs".into(),
            package.into(),
            crate_kind(package),
            class,
            src,
        );
        let mut out = Vec::new();
        for rule in registry() {
            rule.check(&file, &mut out);
        }
        out
    }

    fn rules_hit(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hashmap_flagged_in_hot_crate_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_hit(&check_src("delorean_trace", FileClass::Lib, src)),
            ["no-std-hash"]
        );
        assert!(check_src("delorean_bench", FileClass::Lib, src).is_empty());
    }

    #[test]
    fn wallclock_flagged_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_cpu", FileClass::Lib, src)),
            ["no-wallclock"]
        );
        assert!(check_src("delorean_bench", FileClass::Lib, src).is_empty());
        assert!(check_src("criterion", FileClass::Lib, src).is_empty());
        // A plain `Instant` ident (e.g. storing one handed in) is fine.
        assert!(check_src("delorean_cpu", FileClass::Lib, "fn f(t: Instant) {}\n").is_empty());
    }

    #[test]
    fn float_accum_detection() {
        let src = "struct C { seconds: f64 }\nimpl C { fn add(&mut self, s: f64) { self.seconds += s; } }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_virt", FileClass::Lib, src)),
            ["float-accum"]
        );
        // Integer accumulation is fine.
        let ints = "struct C { n: u64 }\nimpl C { fn add(&mut self) { self.n += 1; } }\n";
        assert!(check_src("delorean_virt", FileClass::Lib, ints).is_empty());
        // Typed float folds are flagged; statmodel is out of scope.
        let fold = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_core", FileClass::Lib, fold)),
            ["float-accum"]
        );
        assert!(check_src("delorean_statmodel", FileClass::Lib, fold).is_empty());
    }

    #[test]
    fn safety_comment_required() {
        let bad = "fn f(p: *const u8) { let _ = unsafe { *p }; }\n";
        assert_eq!(
            rules_hit(&check_src("memmap2", FileClass::Lib, bad)),
            ["safety-comment"]
        );
        let good = "fn f(p: *const u8) {\n    // SAFETY: p is valid for reads by contract\n    let _ = unsafe { *p };\n}\n";
        assert!(check_src("memmap2", FileClass::Lib, good).is_empty());
        let doc = "/// # Safety\n/// caller must own the slot\npub unsafe fn put() {}\n";
        assert!(check_src("rayon", FileClass::Lib, doc).is_empty());
    }

    #[test]
    fn unwrap_flagged_in_lib_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_cache", FileClass::Lib, src)),
            ["no-unwrap"]
        );
        assert!(check_src("delorean_cache", FileClass::Tests, src).is_empty());
        assert!(check_src("rayon", FileClass::Lib, src).is_empty());
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(check_src("delorean_cache", FileClass::Lib, test_mod).is_empty());
        // unwrap_or and friends are not unwrap.
        assert!(check_src(
            "delorean_cache",
            FileClass::Lib,
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n"
        )
        .is_empty());
    }

    #[test]
    fn panic_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_sampling", FileClass::Lib, src)),
            ["no-unwrap"]
        );
    }

    #[test]
    fn lossy_cast_width_inference() {
        // Known 64-bit source into usize: lossy (usize may be 32-bit).
        let src = "fn f(k: u64) -> usize { k as usize }\n";
        assert_eq!(
            rules_hit(&check_src("delorean_trace", FileClass::Lib, src)),
            ["lossy-cast"]
        );
        // u32 into usize is lossless.
        assert!(check_src(
            "delorean_trace",
            FileClass::Lib,
            "fn f(k: u32) -> usize { k as usize }\n"
        )
        .is_empty());
        // len() is a known 64-bit builtin.
        assert_eq!(
            rules_hit(&check_src(
                "delorean_cache",
                FileClass::Lib,
                "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n"
            )),
            ["lossy-cast"]
        );
        // Parenthesized expression: the inner cast decides.
        assert_eq!(
            rules_hit(&check_src(
                "delorean_trace",
                FileClass::Lib,
                "fn f(a: u32, b: u32) -> usize { (a as u64 * b as u64) as usize }\n"
            )),
            ["lossy-cast"]
        );
        // Unknown width: skipped.
        assert!(check_src(
            "delorean_trace",
            FileClass::Lib,
            "fn f(k: Mystery) -> usize { k.get() as usize }\n"
        )
        .is_empty());
        // Widening is fine.
        assert!(check_src(
            "delorean_trace",
            FileClass::Lib,
            "fn f(k: u32) -> u64 { k as u64 }\n"
        )
        .is_empty());
        // Out of scope crate: skipped.
        assert!(check_src(
            "delorean_core",
            FileClass::Lib,
            "fn f(k: u64) -> usize { k as usize }\n"
        )
        .is_empty());
    }
}
