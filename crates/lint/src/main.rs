//! CLI for `delorean-lint`: scan the workspace, print rustc-style
//! diagnostics, optionally write the JSON report, exit non-zero on any
//! finding.

use delorean_lint::rules::registry;
use delorean_lint::Engine;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
delorean-lint: static determinism & safety contract checker

USAGE:
    cargo run -p delorean-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>     workspace root (default: nearest ancestor with a [workspace] manifest)
    --json <PATH>    also write the machine-readable report to PATH
    --rules          list the rules and exit
    --help           show this help
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--rules" => {
                for rule in registry() {
                    println!("{:<16} {}", rule.id(), rule.description());
                }
                println!(
                    "{:<16} every manifest opts into the shared unsafe_op_in_unsafe_fn deny table",
                    "workspace-lints"
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("delorean-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("delorean-lint: no workspace root found (run from the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match Engine::new(&root).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("delorean-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("delorean-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("delorean-lint: JSON report written to {}", path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the nearest manifest with a
/// `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
