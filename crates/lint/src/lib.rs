//! `delorean-lint` — the workspace's static determinism & safety
//! contract checker.
//!
//! The repository's core claim is that reports are bitwise identical
//! across worker counts, trace sources and batch splits. The runtime
//! oracles (`tests/determinism.rs`, `tests/tiled_determinism.rs`) prove
//! that for the code as it exists; this crate keeps the *next* change
//! honest at compile-review time, with zero dependencies (crates.io is
//! unreachable, so no syn/dylint — a hand-rolled [`lexer`] and a
//! token-level rule engine, the same weight class as the `FlatMap`
//! substrate it polices).
//!
//! # Rules
//!
//! | rule | contract |
//! |------|----------|
//! | `no-std-hash` | hot crates must use the `FlatMap`/`FlatSet` substrate, not std's randomized tables |
//! | `no-wallclock` | `Instant::now`/`SystemTime` only in the bench harness |
//! | `float-accum` | cross-unit float sums go through the plan-ordered summation helpers |
//! | `safety-comment` | every `unsafe` carries an adjacent `// SAFETY:` invariant |
//! | `no-unwrap` | library crates return typed errors, never `unwrap`/`expect`/`panic!` |
//! | `lossy-cast` | hot-crate integer casts are provably lossless or use `delorean_trace::cast` |
//! | `workspace-lints` | every manifest opts into the shared `unsafe_op_in_unsafe_fn = "deny"` table |
//!
//! # Waivers
//!
//! A finding can be waived in place with a justified comment on the
//! offending line or the line above:
//!
//! ```text
//! // lint:allow(no-std-hash): collected only for len(); no iteration
//! ```
//!
//! A waiver without a justification is itself a diagnostic
//! (`bad-waiver`) — the policy is *explain it or fix it*. Only plain
//! `//` comments carry waivers; doc comments are documentation, so a
//! `lint:allow` mentioned in one (like the example above) is inert.
//!
//! # Running
//!
//! ```text
//! cargo run -p delorean-lint            # human diagnostics, exit 1 on findings
//! cargo run -p delorean-lint -- --json delorean-lint.json
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::Engine;
pub use report::{Diagnostic, Report};
