//! A small, dependency-free Rust tokenizer.
//!
//! The lint rules only need a *token-accurate* view of the source — one
//! that never mistakes the contents of a string literal or a comment for
//! code — not a full parse tree. This lexer produces exactly that: a
//! flat stream of identifier/punctuation/literal tokens with line and
//! column positions, plus the comments as a separate side channel (the
//! `// SAFETY:` and `// lint:allow(...)` conventions live in comments).
//!
//! Deliberately unsupported: macros are lexed as ordinary tokens,
//! `cfg`-disabled code is lexed like live code (rules must stay
//! conservative), and numeric literals keep their raw text so rules can
//! read suffixes (`0u64`) without a numeric model.

/// Kind of one lexed token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Single punctuation character (`{`, `+`, `#`, ...).
    Punct,
    /// Numeric literal, raw text preserved (`0xff`, `1.0e3`, `7u64`).
    Num,
    /// String literal (normal, raw or byte); contents are opaque.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexed code token.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Raw source text (for `Str` a placeholder, not the contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column of the first character.
    pub col: u32,
}

impl Token {
    /// `true` when the token is punctuation `c`.
    #[inline]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// `true` when the token is the identifier/keyword `s`.
    #[inline]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment, with its line extent and whether it is a doc comment.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based line of the last character (equals `line` for `//`).
    pub end_line: u32,
    /// `true` for `///`, `//!`, `/**` and `/*!` doc comments.
    pub doc: bool,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments excluded.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to punctuation tokens rather than an error, so a
/// half-edited file still gets best-effort diagnostics.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let (line, col) = (self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'"' => self.string(line, col),
                b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_ahead(1)) => {
                    self.bump();
                    self.raw_string(line, col);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string(line, col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.char_lit(line, col);
                }
                b'b' if self.peek(1) == b'r'
                    && (self.peek(2) == b'"' || (self.peek(2) == b'#' && self.raw_ahead(2))) =>
                {
                    self.bump();
                    self.bump();
                    self.raw_string(line, col);
                }
                b'\'' => self.quote(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// From a `r` at offset `at - 1`: do `#`s at `at..` lead to a quote?
    fn raw_ahead(&self, at: usize) -> bool {
        let mut j = at;
        while self.peek(j) == b'#' {
            j += 1;
        }
        self.peek(j) == b'"'
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let doc = text.starts_with("///") || text.starts_with("//!");
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            doc,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let doc = text.starts_with("/**") || text.starts_with("/*!");
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            doc,
        });
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while self.i < self.b.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, "\"…\"".into(), line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while self.i < self.b.len() {
            if self.bump() == b'"' {
                for j in 0..hashes {
                    if self.peek(j) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, "r\"…\"".into(), line, col);
    }

    fn char_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.push(TokKind::Char, "'…'".into(), line, col);
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        let n1 = self.peek(1);
        if n1 == b'\\' {
            self.char_lit(line, col);
        } else if (n1.is_ascii_alphanumeric() || n1 == b'_') && self.peek(2) != b'\'' {
            // Lifetime: consume the quote and the identifier.
            self.bump();
            let start = self.i;
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            let text = format!("'{}", String::from_utf8_lossy(&self.b[start..self.i]));
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            self.char_lit(line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.i;
        while self.i < self.b.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                // Exponent sign: `1e-3` / `1E+3`.
                if (c == b'e' || c == b'E')
                    && (self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit()
                    && !self.b[start..self.i].starts_with(b"0x")
                {
                    self.bump();
                    self.bump();
                    continue;
                }
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // Decimal point, but not a range (`0..n`) or method call.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.i;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("fn main() { x += 1; }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokKind::Ident, "main".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "unsafe HashMap unwrap()";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r###"let s = r#"panic! " inside"#; let b = b"unwrap"; let c = br#"x"#;"###);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            3
        );
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn comments_are_side_channel() {
        let l = lex("// SAFETY: fine\nlet x = 1; /* block\ncomment */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("SAFETY"));
        assert_eq!(l.comments[1].end_line, 3);
        assert!(!l.tokens.iter().any(|t| t.is_ident("SAFETY")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '_'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        // 'x', '\n' are chars; '_' lexes as a char-or-lifetime edge we
        // accept either way — it must simply not derail the stream.
        assert!(l.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn numbers_keep_suffixes_and_floats() {
        let t = kinds("let a = 0xffu64; let b = 1.5e-3f32; let r = 0..10;");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert!(nums.contains(&"0xffu64"));
        assert!(nums.contains(&"1.5e-3f32"));
        assert!(nums.contains(&"0") && nums.contains(&"10"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("let")));
    }
}
