//! The workspace engine: crate discovery, file classification, rule
//! execution, waiver application, and the `workspace-lints` manifest
//! check.
//!
//! Crate discovery is filesystem-based (every `Cargo.toml` under the
//! root except `target/`), and each `.rs` file is attributed to its
//! *nearest* manifest — so nested crates never leak files into the
//! facade package. No cargo metadata, no network, no dependencies.

use crate::policy::{crate_kind, FileClass};
use crate::report::{Diagnostic, Report, ReportWaiver};
use crate::rules::{known_rule_ids, registry};
use crate::source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// A lint run rooted at a workspace directory.
#[derive(Clone, Debug)]
pub struct Engine {
    root: PathBuf,
}

impl Engine {
    /// An engine for the workspace at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Engine {
        Engine { root: root.into() }
    }

    /// Scan the workspace and produce the full report.
    pub fn run(&self) -> io::Result<Report> {
        let crates = discover_crates(&self.root)?;
        let mut files = Vec::new();
        collect_rs_files(&self.root, &mut files)?;
        files.sort();

        let rules = registry();
        let known = known_rule_ids();
        let mut raw: Vec<Diagnostic> = Vec::new();
        let mut sources: Vec<SourceFile> = Vec::new();

        for path in &files {
            let Some((crate_dir, package)) = owning_crate(&crates, path) else {
                continue;
            };
            let Some(class) = classify(crate_dir, path) else {
                continue;
            };
            let src = std::fs::read_to_string(path)?;
            let rel = rel_path(&self.root, path);
            let file = SourceFile::analyze(rel, package.clone(), crate_kind(package), class, &src);
            for rule in &rules {
                rule.check(&file, &mut raw);
            }
            sources.push(file);
        }

        // Manifest checks: the workspace must carry the shared lints
        // table and every member must opt in.
        check_workspace_lints(&self.root, &crates, &mut raw)?;

        // Apply waivers: a justified waiver covering the diagnostic's
        // line suppresses it; waivers without a justification (or
        // naming an unknown rule) are themselves diagnostics.
        let mut waivers: Vec<(String, crate::source::Waiver)> = Vec::new();
        for file in &sources {
            for w in &file.waivers {
                waivers.push((file.rel_path.clone(), w.clone()));
            }
        }
        for (path, w) in &waivers {
            if !known.contains(&w.rule.as_str()) {
                raw.push(Diagnostic {
                    rule: "bad-waiver",
                    path: path.clone(),
                    line: w.line,
                    col: 1,
                    message: format!(
                        "waiver names unknown rule `{}`; known rules: {}",
                        w.rule,
                        known.join(", ")
                    ),
                });
            } else if w.reason.is_empty() {
                raw.push(Diagnostic {
                    rule: "bad-waiver",
                    path: path.clone(),
                    line: w.line,
                    col: 1,
                    message: format!(
                        "waiver for `{}` has no justification; write \
                         `// lint:allow({}): <why this is sound>`",
                        w.rule, w.rule
                    ),
                });
            }
        }
        let mut kept = Vec::new();
        for d in raw {
            let waived = d.rule != "bad-waiver"
                && waivers.iter_mut().any(|(path, w)| {
                    let hit = *path == d.path
                        && w.rule == d.rule
                        && w.covers == d.line
                        && !w.reason.is_empty();
                    if hit {
                        w.used = true;
                    }
                    hit
                });
            if !waived {
                kept.push(d);
            }
        }
        kept.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });

        Ok(Report {
            diagnostics: kept,
            waivers: waivers
                .into_iter()
                .map(|(path, w)| ReportWaiver {
                    rule: w.rule,
                    path,
                    line: w.line,
                    reason: w.reason,
                    used: w.used,
                })
                .collect(),
            files_scanned: sources.len(),
            crates_scanned: crates.len(),
        })
    }
}

/// Find every `(crate dir, package name)` under `root`.
fn discover_crates(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut manifests = Vec::new();
    walk(root, &mut |path| {
        if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(path.to_path_buf());
        }
    })?;
    let mut out = Vec::new();
    for m in manifests {
        let text = std::fs::read_to_string(&m)?;
        if let Some(name) = package_name(&text) {
            if let Some(dir) = m.parent() {
                out.push((dir.to_path_buf(), name));
            }
        }
    }
    // Longest path first, so nearest-manifest attribution is a prefix scan.
    out.sort_by_key(|(dir, _)| std::cmp::Reverse(dir.as_os_str().len()));
    Ok(out)
}

/// Parse `name = "..."` out of a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively visit every file under `dir`, skipping build output and
/// VCS internals.
fn walk(dir: &Path, visit: &mut impl FnMut(&Path)) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, visit)?;
        } else {
            visit(&path);
        }
    }
    Ok(())
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    walk(root, &mut |path| {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
    })
}

/// The nearest crate owning `path` (crate list is longest-dir-first).
fn owning_crate<'a>(
    crates: &'a [(PathBuf, String)],
    path: &Path,
) -> Option<(&'a Path, &'a String)> {
    crates
        .iter()
        .find(|(dir, _)| path.starts_with(dir))
        .map(|(dir, name)| (dir.as_path(), name))
}

/// Compilation class of `path` within its crate, `None` for files that
/// are not part of a target (stray `.rs` under docs, say).
fn classify(crate_dir: &Path, path: &Path) -> Option<FileClass> {
    let rel = path.strip_prefix(crate_dir).ok()?;
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    let first = parts.next()?;
    Some(match first.as_ref() {
        "src" => {
            if parts.next().as_deref() == Some("bin") || rel.ends_with("main.rs") {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        "tests" => FileClass::Tests,
        "benches" => FileClass::Benches,
        "examples" => FileClass::Examples,
        "build.rs" => FileClass::Bin,
        _ => return None,
    })
}

/// `workspace-lints`: the root manifest must deny
/// `unsafe_op_in_unsafe_fn` workspace-wide, and every member manifest
/// must opt into the shared table with `[lints] workspace = true`.
fn check_workspace_lints(
    root: &Path,
    crates: &[(PathBuf, String)],
    out: &mut Vec<Diagnostic>,
) -> io::Result<()> {
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let denies = section_lines(&root_manifest, "[workspace.lints.rust]")
        .any(|l| l.starts_with("unsafe_op_in_unsafe_fn") && l.contains("deny"));
    if !denies {
        out.push(Diagnostic {
            rule: "workspace-lints",
            path: "Cargo.toml".into(),
            line: 1,
            col: 1,
            message: "[workspace.lints.rust] must set `unsafe_op_in_unsafe_fn = \"deny\"`".into(),
        });
    }
    for (dir, name) in crates {
        let manifest = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        let opted = section_lines(&manifest, "[lints]")
            .any(|l| l.starts_with("workspace") && l.contains("true"));
        if !opted {
            out.push(Diagnostic {
                rule: "workspace-lints",
                path: rel_path(root, &dir.join("Cargo.toml")),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{name}` does not opt into the shared lint table; add \
                     `[lints]\\nworkspace = true`"
                ),
            });
        }
    }
    Ok(())
}

/// The trimmed lines of one `[section]` of a TOML document.
fn section_lines<'a>(toml: &'a str, section: &'a str) -> impl Iterator<Item = &'a str> {
    let mut in_section = false;
    toml.lines().filter_map(move |line| {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == section;
            return None;
        }
        if in_section && !line.is_empty() {
            Some(line)
        } else {
            None
        }
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parsing() {
        let m = "[workspace]\nmembers = []\n[package]\nname = \"delorean_trace\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(m), Some("delorean_trace".into()));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn section_scanning() {
        let m = "[lints]\nworkspace = true\n[package]\nname = \"x\"\n";
        assert!(section_lines(m, "[lints]").any(|l| l.starts_with("workspace")));
        assert!(!section_lines(m, "[lints]").any(|l| l.starts_with("name")));
    }

    #[test]
    fn classification() {
        let dir = Path::new("/w/crates/x");
        let class = |p: &str| classify(dir, &dir.join(p));
        assert_eq!(class("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(class("src/bin/tool.rs"), Some(FileClass::Bin));
        assert_eq!(class("src/main.rs"), Some(FileClass::Bin));
        assert_eq!(class("tests/t.rs"), Some(FileClass::Tests));
        assert_eq!(class("benches/b.rs"), Some(FileClass::Benches));
        assert_eq!(class("examples/e.rs"), Some(FileClass::Examples));
        assert_eq!(class("notes/snippet.rs"), None);
    }

    #[test]
    fn nearest_manifest_wins() {
        let crates = vec![
            (PathBuf::from("/w/crates/x"), "x".to_string()),
            (PathBuf::from("/w"), "root".to_string()),
        ];
        let (dir, name) =
            owning_crate(&crates, Path::new("/w/crates/x/src/lib.rs")).expect("owned");
        assert_eq!(name, "x");
        assert_eq!(dir, Path::new("/w/crates/x"));
        let (_, name) = owning_crate(&crates, Path::new("/w/src/lib.rs")).expect("owned");
        assert_eq!(name, "root");
    }
}
