//! Key cachelines: the Scout's output.

use delorean_trace::{LineAddr, LineMap, Pc};
use serde::{Deserialize, Serialize};

/// Metadata of one key cacheline.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyInfo {
    /// Global access index of the line's first access in the detailed
    /// region — the position the backward key reuse distance is measured
    /// from.
    pub first_access_index: u64,
    /// PC of that first access (used by the limited-associativity model).
    pub pc: Pc,
}

/// The key cachelines of one detailed region: the unique lines whose first
/// access in the region misses the lukewarm cache (§3.2 — the paper
/// reports between 1 and 2,907 of them per 10 k-instruction region,
/// 151 on average).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KeySet {
    keys: LineMap<KeyInfo>,
}

impl KeySet {
    /// An empty key set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a key cacheline; the first registration wins (later
    /// accesses to the same line in the region are not key accesses).
    pub fn insert_first(&mut self, line: LineAddr, info: KeyInfo) {
        self.keys.or_insert_with(line, || info);
    }

    /// Number of key cachelines.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the region needs no reuse distances at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Metadata of a key line.
    pub fn get(&self, line: LineAddr) -> Option<&KeyInfo> {
        self.keys.get(line)
    }

    /// Iterate over `(line, info)` pairs (deterministic table order).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &KeyInfo)> {
        self.keys.iter()
    }

    /// The lines themselves (deterministic table order).
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.keys.keys()
    }
}

impl FromIterator<(LineAddr, KeyInfo)> for KeySet {
    fn from_iter<T: IntoIterator<Item = (LineAddr, KeyInfo)>>(iter: T) -> Self {
        let mut s = KeySet::new();
        for (l, i) in iter {
            s.insert_first(l, i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_wins() {
        let mut ks = KeySet::new();
        ks.insert_first(
            LineAddr(5),
            KeyInfo {
                first_access_index: 10,
                pc: Pc(1),
            },
        );
        ks.insert_first(
            LineAddr(5),
            KeyInfo {
                first_access_index: 20,
                pc: Pc(2),
            },
        );
        assert_eq!(ks.len(), 1);
        assert_eq!(ks.get(LineAddr(5)).unwrap().first_access_index, 10);
    }

    #[test]
    fn collect_and_iterate() {
        let ks: KeySet = (0..5u64)
            .map(|i| {
                (
                    LineAddr(i),
                    KeyInfo {
                        first_access_index: i,
                        pc: Pc(0x100),
                    },
                )
            })
            .collect();
        assert_eq!(ks.len(), 5);
        assert_eq!(ks.lines().count(), 5);
        assert!(!ks.is_empty());
        assert!(ks.iter().all(|(l, i)| l.0 == i.first_access_index));
    }

    #[test]
    fn empty_set() {
        let ks = KeySet::new();
        assert!(ks.is_empty());
        assert!(ks.get(LineAddr(1)).is_none());
    }
}
