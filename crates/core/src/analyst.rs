//! The Analyst pass: evaluate the detailed region with DSW.
//!
//! The Analyst rebuilds the lukewarm state (30 k instructions of detailed
//! warming on a cold hierarchy), then simulates the detailed region with
//! the interval timing model, classifying every lukewarm miss through the
//! [`crate::dsw::DswModel`]: conflict and capacity misses go to
//! memory, warming misses are modeled as hits.
//!
//! With prefetching enabled (§6.3.2), the analyst drives the LLC stride
//! prefetcher from *predicted* misses and nullifies prefetches to lines
//! predicted to be resident — the statistical model replaces the simulated
//! miss stream one-for-one.

use crate::dsw::{DswCounts, DswModel};
use delorean_cache::{Hierarchy, MachineConfig, MemLevel, StridePrefetcher};
use delorean_cpu::{DetailedResult, TimingConfig};
use delorean_sampling::{run_region_detailed, Region};
use delorean_statmodel::assoc::LimitedAssocModel;
use delorean_statmodel::ReuseProfile;
use delorean_trace::{LineMap, MemAccess, Workload};
use delorean_virt::{CostModel, HostClock, WorkKind};

/// Everything the analyst needs for one region, assembled from the Scout
/// and Explorer outputs.
#[derive(Clone, Debug)]
pub struct AnalystInput {
    /// Exact backward reuse distances of the resolved keys.
    pub key_rds: LineMap<u64>,
    /// Pooled vicinity profile from all engaged explorers.
    pub vicinity: ReuseProfile,
    /// Stride model trained by the Scout.
    pub assoc: LimitedAssocModel,
    /// Model warming misses as hits (the paper's key insight; `false`
    /// only in the ablation study, where they count as misses).
    pub warming_miss_as_hit: bool,
    /// Censoring horizon for unresolved keys, in accesses (the deepest
    /// explorer window); 0 = treat unresolved keys as cold.
    pub censoring_horizon_accesses: u64,
}

impl Default for AnalystInput {
    fn default() -> Self {
        AnalystInput {
            key_rds: LineMap::new(),
            vicinity: ReuseProfile::new(),
            assoc: LimitedAssocModel::new(),
            warming_miss_as_hit: true,
            censoring_horizon_accesses: 0,
        }
    }
}

/// Result of evaluating one region.
#[derive(Clone, Debug, Default)]
pub struct AnalystOutput {
    /// The detailed (timed) result of the region.
    pub detailed: DetailedResult,
    /// DSW classification counters.
    pub counts: DswCounts,
}

/// Run the Analyst for one region.
#[allow(clippy::too_many_arguments)]
pub fn run_analyst(
    workload: &dyn Workload,
    machine: &MachineConfig,
    timing: &TimingConfig,
    cost: &CostModel,
    clock: &mut HostClock,
    region: &Region,
    input: &AnalystInput,
    work_multiplier: u64,
) -> AnalystOutput {
    // The analyst does not fast-forward: per Figure 4 it receives the
    // architectural state at the region boundary from Explorer-N over the
    // pipe ("control is transferred to the different Analysts"), which is
    // what makes parallel design-space exploration nearly free (§3.3). It
    // pays the hand-off plus detailed simulation of warming + region.
    let _ = work_multiplier; // interval work is charged by the other passes
    let span = region.detailed.end - region.warming.start;
    clock.charge(cost.instr_seconds(WorkKind::Detailed, span));
    clock.charge(cost.transfer_seconds);

    let model = DswModel::with_replacement(
        input.key_rds.clone(),
        input.vicinity.clone(),
        input.assoc.clone(),
        machine.hierarchy.llc.sets(),
        machine.hierarchy.llc.ways as u64,
        machine.hierarchy.llc.replacement,
    )
    .with_censoring_horizon(input.censoring_horizon_accesses);
    // The lukewarm hierarchy itself never auto-trains a prefetcher — for
    // DeLorean the prefetcher must be fed *predicted* misses.
    let plain = MachineConfig {
        hierarchy: machine.hierarchy,
        prefetch: false,
    };
    let mut lukewarm = Hierarchy::new(&plain);
    let mut prefetcher = machine.prefetch.then(StridePrefetcher::paper_default);
    // Last in-region access index of every line seen in the region: DSW
    // knows the *exact* backward reuse distance of re-accesses.
    let mut seen: LineMap<u64> = LineMap::new();
    let mut counts = DswCounts::default();
    let region_start = region.detailed.start;

    let mut source = |a: &MemAccess, now: u64| {
        let line = a.line();
        let in_region = a.icount >= region_start;
        if !in_region {
            // Detailed warming: plain lukewarm behavior builds the state.
            return lukewarm.access_data(a.pc, line, now);
        }
        // One scan of the LLC set answers both questions the classifier
        // needs (was the line resident? was its set saturated?).
        let (resident, full) = lukewarm.llc().probe_set(line);
        let set_full = full && !resident;
        let simulated = lukewarm.access_data(a.pc, line, now);
        let previous = seen.insert(line, now);
        if simulated != MemLevel::Memory {
            return simulated;
        }
        if let Some(last) = previous {
            // Re-miss of a line already touched in the region: its exact
            // backward reuse distance is the in-region gap; classify it
            // like any key (no set-full shortcut — the set pressure was
            // already charged at the first access).
            let rd = now.saturating_sub(last + 1);
            return if model.predicts_capacity_miss(rd) {
                MemLevel::Memory
            } else {
                MemLevel::Llc
            };
        }
        let verdict = model.classify_miss(a.pc, line, set_full);
        counts.record(verdict);
        let is_miss = verdict.is_miss()
            || (!input.warming_miss_as_hit && verdict == crate::dsw::DswVerdict::WarmingMiss);
        if is_miss {
            if let Some(pf) = prefetcher.as_mut() {
                for l in pf.on_trigger(a.pc, line) {
                    // Nullify prefetches to lines predicted resident.
                    let predicted_resident = lukewarm.llc().probe(l)
                        || matches!(
                            model.classify_miss(a.pc, l, false),
                            crate::dsw::DswVerdict::WarmingMiss
                        );
                    if !predicted_resident {
                        lukewarm.llc_mut().fill(l);
                    }
                }
            }
            MemLevel::Memory
        } else {
            MemLevel::Llc
        }
    };
    let detailed = run_region_detailed(workload, region, timing, &mut source);
    AnalystOutput { detailed, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn setup() -> (impl Workload, MachineConfig, Region) {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        (w, machine, plan.regions[0].clone())
    }

    #[test]
    fn empty_input_classifies_misses_as_cold() {
        let (w, machine, region) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let out = run_analyst(
            &w,
            &machine,
            &TimingConfig::table1(),
            &cost,
            &mut clock,
            &region,
            &AnalystInput::default(),
            1,
        );
        assert_eq!(
            out.detailed.instructions,
            region.detailed.clone().count() as u64
        );
        // Without key rds, every first-time lukewarm miss is cold.
        assert_eq!(out.counts.warming, 0);
        assert_eq!(out.counts.capacity, 0);
        assert!(clock.seconds() > 0.0);
    }

    #[test]
    fn short_key_rds_turn_misses_into_hits() {
        let (w, machine, region) = setup();
        let cost = CostModel::paper_host();
        // Claim every line has a tiny backward reuse distance: everything
        // becomes a warming miss (hit).
        let region_first = w.access_index_at_instr(region.detailed.start);
        let region_end = w.access_index_at_instr(region.detailed.end);
        let mut input = AnalystInput::default();
        for a in delorean_trace::WorkloadExt::iter_range(&w, region_first..region_end) {
            input.key_rds.insert(a.line(), 1);
        }
        // Short vicinity reuses: stack distances compress to ~4 lines, so
        // both first accesses and re-misses classify as (warming) hits.
        input.vicinity.record(4, 1.0);
        let mut clock = HostClock::new();
        let out = run_analyst(
            &w,
            &machine,
            &TimingConfig::table1(),
            &cost,
            &mut clock,
            &region,
            &input,
            1,
        );
        assert_eq!(out.counts.cold, 0);
        assert_eq!(out.counts.capacity, 0);
        // Memory level only via set-full conflicts, which are rare here.
        let mem = out.detailed.level_counts[3];
        assert!(
            mem <= out.counts.conflict_set_full + out.counts.conflict_stride,
            "unexpected memory accesses: {mem}"
        );
    }

    #[test]
    fn huge_key_rds_are_never_warming_misses() {
        // mcf's far streams guarantee lukewarm LLC misses in the region.
        let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        let region = plan.regions[0].clone();
        let cost = CostModel::paper_host();
        let region_first = w.access_index_at_instr(region.detailed.start);
        let region_end = w.access_index_at_instr(region.detailed.end);
        let mut input = AnalystInput::default();
        for a in delorean_trace::WorkloadExt::iter_range(&w, region_first..region_end) {
            input.key_rds.insert(a.line(), 1 << 40);
        }
        input.vicinity.record(1 << 41, 1.0);
        let mut clock = HostClock::new();
        let out = run_analyst(
            &w,
            &machine,
            &TimingConfig::table1(),
            &cost,
            &mut clock,
            &region,
            &input,
            1,
        );
        // Every classified access is a real miss (capacity or conflict,
        // depending on lukewarm set pressure) — never a warming miss.
        assert!(out.counts.total() > 0, "classifier never fired");
        assert_eq!(out.counts.warming, 0);
        assert_eq!(out.counts.cold, 0);
        assert!(out.detailed.level_counts[3] > 0, "no memory accesses");
    }

    #[test]
    fn deterministic() {
        let (w, machine, region) = setup();
        let cost = CostModel::paper_host();
        let input = AnalystInput::default();
        let mut c1 = HostClock::new();
        let mut c2 = HostClock::new();
        let a = run_analyst(
            &w,
            &machine,
            &TimingConfig::table1(),
            &cost,
            &mut c1,
            &region,
            &input,
            1,
        );
        let b = run_analyst(
            &w,
            &machine,
            &TimingConfig::table1(),
            &cost,
            &mut c2,
            &region,
            &input,
            1,
        );
        assert_eq!(a.detailed, b.detailed);
        assert_eq!(a.counts, b.counts);
    }
}
