//! DeLorean configuration.

use delorean_trace::Scale;
use serde::{Deserialize, Serialize};

/// Parameters of the DSW + TT methodology.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeLoreanConfig {
    /// Explorer window lengths in instructions before the region start,
    /// shortest first (§3.3: 5 M, 50 M, 100 M, 1 B at paper scale).
    /// Explorer *k* profiles from `windows[k]` before the region to the
    /// region start, for the keys the previous explorers left unresolved.
    pub explorer_windows_instrs: Vec<u64>,
    /// Vicinity sampling period: one sampled access per this many *memory*
    /// instructions (§3.3: 100 k; Figure 11 sweeps 10 k / 100 k / 1 M).
    pub vicinity_period_accesses: u64,
    /// Seed for vicinity sampling decisions.
    pub seed: u64,
    /// Model warming misses as hits (§3.1.2). `false` only for the
    /// ablation that quantifies the insight's value.
    pub warming_miss_as_hit: bool,
}

impl DeLoreanConfig {
    /// The paper's configuration at the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        DeLoreanConfig {
            explorer_windows_instrs: vec![
                scale.instrs(5_000_000),
                scale.instrs(50_000_000),
                scale.instrs(100_000_000),
                scale.instrs(1_000_000_000),
            ],
            vicinity_period_accesses: scale.sample_period(100_000),
            seed: 0xde10_4ea4,
            warming_miss_as_hit: true,
        }
    }

    /// Ablation: count warming misses as misses.
    pub fn with_warming_miss_as_miss(mut self) -> Self {
        self.warming_miss_as_hit = false;
        self
    }

    /// Override the vicinity sampling period (paper-scale memory
    /// instructions), rescaled.
    pub fn with_vicinity_period(mut self, scale: Scale, paper_period: u64) -> Self {
        self.vicinity_period_accesses = scale.sample_period(paper_period);
        self
    }

    /// Use only the first `n` explorer windows (ablation).
    pub fn with_max_explorers(mut self, n: usize) -> Self {
        self.explorer_windows_instrs.truncate(n.max(1));
        self
    }

    /// Validate: windows strictly increasing and non-empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.explorer_windows_instrs.is_empty() {
            return Err("need at least one explorer window".into());
        }
        if self.explorer_windows_instrs.len() > crate::MAX_EXPLORERS {
            return Err(format!(
                "at most {} explorers supported",
                crate::MAX_EXPLORERS
            ));
        }
        if !self.explorer_windows_instrs.windows(2).all(|w| w[0] < w[1]) {
            return Err("explorer windows must be strictly increasing".into());
        }
        if self.vicinity_period_accesses == 0 {
            return Err("vicinity period must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_windows() {
        let c = DeLoreanConfig::for_scale(Scale::paper());
        assert_eq!(
            c.explorer_windows_instrs,
            vec![5_000_000, 50_000_000, 100_000_000, 1_000_000_000]
        );
        assert_eq!(c.vicinity_period_accesses, 100_000);
        c.validate().unwrap();
    }

    #[test]
    fn scaled_windows_preserve_ordering() {
        for scale in [Scale::demo(), Scale::tiny()] {
            let c = DeLoreanConfig::for_scale(scale);
            c.validate().unwrap();
        }
    }

    #[test]
    fn ablation_truncates_windows() {
        let c = DeLoreanConfig::for_scale(Scale::paper()).with_max_explorers(2);
        assert_eq!(c.explorer_windows_instrs.len(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn vicinity_override() {
        let c =
            DeLoreanConfig::for_scale(Scale::paper()).with_vicinity_period(Scale::paper(), 10_000);
        assert_eq!(c.vicinity_period_accesses, 10_000);
    }

    #[test]
    fn validation_rejects_bad_windows() {
        let mut c = DeLoreanConfig::for_scale(Scale::paper());
        c.explorer_windows_instrs = vec![10, 10];
        assert!(c.validate().is_err());
        c.explorer_windows_instrs = vec![];
        assert!(c.validate().is_err());
        let mut d = DeLoreanConfig::for_scale(Scale::paper());
        d.vicinity_period_accesses = 0;
        assert!(d.validate().is_err());
        let mut e = DeLoreanConfig::for_scale(Scale::paper());
        e.explorer_windows_instrs = vec![1, 2, 3, 4, 5];
        assert!(e.validate().is_err());
    }
}
