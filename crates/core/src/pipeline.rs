//! The pipelined time-traveling implementation.
//!
//! The paper runs each pass (Scout, Explorer-1..N, Analyst) as a separate
//! gem5 process synchronized over OS pipes, pipelined across detailed
//! regions: as soon as the Scout finishes region *m* it moves to *m+1*
//! while Explorer-1 processes *m* (§3.2, Figure 4). This module mirrors
//! that design with one thread per pass connected by bounded crossbeam
//! channels — the bound models the finite pipe buffer, providing natural
//! backpressure.
//!
//! Every stage is a deterministic function of its input, so the pipelined
//! run produces bit-identical results to
//! [`DeLoreanRunner::run_serial`](crate::DeLoreanRunner::run_serial); the
//! test suite asserts this.

use crate::analyst::run_analyst;
use crate::config::DeLoreanConfig;
use crate::dsw::DswCounts;
use crate::explorer::{pending_from_keyset, run_explorer, PendingKey};
use crate::runner::{accumulate, DeLoreanOutput, RegionArtifacts};
use crate::scout::scout_region;
use crate::stats::TtStats;
use crate::MAX_EXPLORERS;
use crossbeam::channel::{bounded, Receiver, Sender};
use delorean_cache::MachineConfig;
use delorean_cpu::TimingConfig;
use delorean_sampling::{RegionPlan, RegionReport, SimulationReport};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost, WorkKind};

/// Pipe buffer depth between passes (regions in flight per stage).
const PIPE_DEPTH: usize = 2;

/// In-flight state of one region as it moves down the pipeline.
struct PipeMsg {
    artifacts: RegionArtifacts,
    pending: Vec<PendingKey>,
    prev_end_instr: u64,
}

/// Run the full pipelined TT evaluation.
pub fn run_pipelined(
    workload: &dyn Workload,
    machine: &MachineConfig,
    timing: &TimingConfig,
    cost: &CostModel,
    config: &DeLoreanConfig,
    plan: &RegionPlan,
) -> DeLoreanOutput {
    // lint:allow(no-unwrap): documented # Panics contract — the pipeline refuses to start on an invalid config
    config.validate().expect("invalid DeLorean config");
    let n_explorers = config.explorer_windows_instrs.len();
    let mult = plan.config.work_multiplier();

    std::thread::scope(|scope| {
        // Scout → E1 → ... → EN → Analyst channels.
        let (scout_tx, mut stage_rx) = bounded::<PipeMsg>(PIPE_DEPTH);

        // Scout thread.
        let scout_handle = scope.spawn({
            let regions = plan.regions.clone();
            move || {
                let mut clock = HostClock::new();
                let mut prev_end = 0u64;
                let deepest_window = *config
                    .explorer_windows_instrs
                    .last()
                    // lint:allow(no-unwrap): validate() above rejects configs with no explorer windows
                    .expect("validated config has windows")
                    / workload.mem_period().max(1);
                for region in &regions {
                    let scout =
                        scout_region(workload, machine, cost, &mut clock, region, prev_end, mult);
                    clock.charge(cost.transfer_seconds);
                    let pending = pending_from_keyset(&scout.keyset);
                    let artifacts = RegionArtifacts {
                        region: region.clone(),
                        input: crate::analyst::AnalystInput {
                            assoc: scout.assoc,
                            warming_miss_as_hit: config.warming_miss_as_hit,
                            censoring_horizon_accesses: deepest_window,
                            ..Default::default()
                        },
                        keys: scout.keyset.len() as u64,
                        engaged: 0,
                        resolved_by: [0; MAX_EXPLORERS],
                        cold_keys: 0,
                        vicinity_samples: 0,
                        false_positive_traps: 0,
                        true_hit_traps: 0,
                    };
                    let msg = PipeMsg {
                        artifacts,
                        pending,
                        prev_end_instr: prev_end,
                    };
                    prev_end = region.detailed.end;
                    if scout_tx.send(msg).is_err() {
                        return clock; // downstream closed
                    }
                }
                drop(scout_tx);
                clock
            }
        });

        // Explorer threads.
        let mut explorer_handles = Vec::with_capacity(n_explorers);
        for k in 0..n_explorers {
            let window = config.explorer_windows_instrs[k];
            let prev_window = if k == 0 {
                0
            } else {
                config.explorer_windows_instrs[k - 1]
            };
            let (tx, rx_next) = bounded::<PipeMsg>(PIPE_DEPTH);
            let rx = std::mem::replace(&mut stage_rx, rx_next);
            explorer_handles.push(scope.spawn(move || {
                explorer_stage(workload, cost, config, k, window, prev_window, mult, rx, tx)
            }));
        }

        // Analyst thread.
        let analyst_rx = stage_rx;
        let analyst_handle = scope.spawn(move || {
            let mut clock = HostClock::new();
            let mut reports = Vec::new();
            let mut stats = TtStats::default();
            let mut counts = DswCounts::default();
            for mut msg in analyst_rx.iter() {
                msg.artifacts.cold_keys = msg.pending.len() as u64;
                let analyst = run_analyst(
                    workload,
                    machine,
                    timing,
                    cost,
                    &mut clock,
                    &msg.artifacts.region,
                    &msg.artifacts.input,
                    mult,
                );
                accumulate(&mut stats, &msg.artifacts);
                counts.merge(&analyst.counts);
                reports.push(RegionReport {
                    region: msg.artifacts.region.index,
                    detailed: analyst.detailed,
                });
            }
            (clock, reports, stats, counts)
        });

        // lint:allow(no-unwrap): join() only fails if the child panicked; re-raising preserves the panic
        let scout_clock = scout_handle.join().expect("scout thread panicked");
        let explorer_clocks: Vec<HostClock> = explorer_handles
            .into_iter()
            // lint:allow(no-unwrap): join() only fails if the child panicked; re-raising preserves the panic
            .map(|h| h.join().expect("explorer thread panicked"))
            .collect();
        let (analyst_clock, mut reports, stats, dsw_counts) =
            // lint:allow(no-unwrap): join() only fails if the child panicked; re-raising preserves the panic
            analyst_handle.join().expect("analyst thread panicked");
        reports.sort_by_key(|r| r.region);

        let mut run_cost = RunCost::new(plan.regions.len() as u64);
        run_cost.push("scout", scout_clock);
        for (k, c) in explorer_clocks.into_iter().enumerate() {
            run_cost.push(format!("explorer-{}", k + 1), c);
        }
        run_cost.push("analyst", analyst_clock);

        let report = SimulationReport {
            workload: workload.name().to_string(),
            strategy: "delorean".into(),
            regions: reports,
            collected_reuse_distances: stats.collected_reuse_distances(),
            cost: run_cost,
            covered_instrs: plan.represented_instrs(),
        };
        DeLoreanOutput {
            report,
            stats,
            dsw_counts,
        }
    })
}

/// One explorer pass: receive regions, profile the unresolved keys, send
/// the enriched message downstream. Returns the pass clock.
#[allow(clippy::too_many_arguments)]
fn explorer_stage(
    workload: &dyn Workload,
    cost: &CostModel,
    config: &DeLoreanConfig,
    k: usize,
    window: u64,
    prev_window: u64,
    mult: u64,
    rx: Receiver<PipeMsg>,
    tx: Sender<PipeMsg>,
) -> HostClock {
    let mut clock = HostClock::new();
    for mut msg in rx.iter() {
        let region = &msg.artifacts.region;
        let interval = region.warming.start.saturating_sub(msg.prev_end_instr);
        if msg.pending.is_empty() {
            clock.charge(cost.instr_seconds(WorkKind::Vff, interval * mult));
        } else {
            msg.artifacts.engaged += 1;
            let vff_part = interval.saturating_sub(window - prev_window);
            clock.charge(cost.instr_seconds(WorkKind::Vff, vff_part * mult));
            let out = run_explorer(
                workload,
                cost,
                &mut clock,
                k,
                window,
                prev_window,
                region,
                &msg.pending,
                config.vicinity_period_accesses,
                config.seed,
                mult,
            );
            clock.charge(cost.transfer_seconds);
            msg.artifacts.resolved_by[k] += out.resolved.len() as u64;
            for (line, rd) in out.resolved {
                msg.artifacts.input.key_rds.insert(line, rd);
            }
            msg.artifacts.input.vicinity.merge(&out.vicinity);
            msg.artifacts.vicinity_samples += out.vicinity_count;
            msg.artifacts.false_positive_traps += out.scan.false_positives;
            msg.artifacts.true_hit_traps += out.scan.true_hits;
            msg.pending = out.remaining;
        }
        if tx.send(msg).is_err() {
            break;
        }
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeLoreanRunner;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn runner() -> DeLoreanRunner {
        DeLoreanRunner::new(
            MachineConfig::for_scale(Scale::tiny()),
            DeLoreanConfig::for_scale(Scale::tiny()),
        )
    }

    fn pipelined(r: &DeLoreanRunner, w: &dyn Workload, plan: &RegionPlan) -> DeLoreanOutput {
        run_pipelined(w, r.machine(), r.timing(), r.cost_model(), r.config(), plan)
    }

    #[test]
    fn pipelined_matches_serial_exactly() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(4)
            .plan();
        let r = runner();
        let serial = r.run_serial(&w, &plan);
        let piped = pipelined(&r, &w, &plan);
        assert_eq!(serial.report.cpi(), piped.report.cpi());
        assert_eq!(serial.report.total(), piped.report.total());
        assert_eq!(serial.stats, piped.stats);
        assert_eq!(serial.dsw_counts, piped.dsw_counts);
        // Cost accounting is identical too, pass by pass.
        for (a, b) in serial
            .report
            .cost
            .passes()
            .iter()
            .zip(piped.report.cost.passes())
        {
            assert_eq!(a.name, b.name);
            assert!(
                (a.seconds - b.seconds).abs() < 1e-9,
                "pass {} cost differs: {} vs {}",
                a.name,
                a.seconds,
                b.seconds
            );
        }
    }

    #[test]
    fn pipelined_works_across_workloads() {
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        for name in ["bwaves", "mcf", "povray"] {
            let w = spec_workload(name, Scale::tiny(), 1).unwrap();
            let out = pipelined(&runner(), &w, &plan);
            assert_eq!(out.report.regions.len(), 2, "{name}");
            assert!(out.report.cpi() > 0.0, "{name}");
        }
    }

    #[test]
    fn regions_come_back_in_order() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(5)
            .plan();
        let out = pipelined(&runner(), &w, &plan);
        let order: Vec<u32> = out.report.regions.iter().map(|r| r.region).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
