//! The Scout pass: look into the future.
//!
//! The Scout fast-forwards (VFF) to the next detailed region, then
//! functionally simulates the detailed-warming window plus the region
//! itself against a *lukewarm replica* of the hierarchy to record the key
//! cachelines: the unique lines whose first access in the region is not
//! already served by the lukewarm L1/MSHRs. Those are the only lines whose
//! reuse distances DSW needs.
//!
//! Keys are filtered against the L1 + MSHRs only — never the LLC — so the
//! key set is identical for every LLC configuration, which is what lets a
//! single Scout/Explorer chain feed many parallel Analysts in design-space
//! exploration (§3.3). (The paper describes the Scout as recording all
//! unique region lines; the lukewarm filter is the natural optimization
//! that also explains why bwaves engages fewer than one Explorer per
//! region on average in Figure 8.)
//!
//! The Scout also trains the limited-associativity stride model with the
//! `(PC, line)` pairs it observes in the region.

use crate::keyset::{KeyInfo, KeySet};
use delorean_cache::{Cache, MachineConfig, MshrFile, MshrOutcome};
use delorean_sampling::Region;
use delorean_statmodel::assoc::LimitedAssocModel;
use delorean_trace::{LineSet, Workload, WorkloadExt};
use delorean_virt::{CostModel, HostClock, WorkKind};

/// Everything the Scout learns about one region.
#[derive(Clone, Debug)]
pub struct ScoutOutput {
    /// The key cachelines.
    pub keyset: KeySet,
    /// Dominant-stride model trained on the region's accesses.
    pub assoc: LimitedAssocModel,
}

/// Run the Scout for one region.
///
/// `prev_end_instr` is where the previous region's detailed window ended
/// (0 for the first region); the VFF charge covers the gap. Interval work
/// is charged at represented magnitude via `work_multiplier`.
pub fn scout_region(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cost: &CostModel,
    clock: &mut HostClock,
    region: &Region,
    prev_end_instr: u64,
    work_multiplier: u64,
) -> ScoutOutput {
    // Fast-forward over the warm-up interval.
    let skip = region.warming.start.saturating_sub(prev_end_instr);
    clock.charge(cost.instr_seconds(WorkKind::Vff, skip * work_multiplier));

    // Functionally simulate warming + region against a lukewarm L1
    // replica (face-value cost: these windows are not scaled).
    let span = region.detailed.end - region.warming.start;
    clock.charge(cost.instr_seconds(WorkKind::Functional, span));

    let mut l1 = Cache::new(machine.hierarchy.l1d);
    let mut mshr = MshrFile::new(
        machine.hierarchy.l1d_mshrs,
        machine.hierarchy.mshr_latency_accesses,
    );
    let p = workload.mem_period();
    let warm_first = workload.access_index_at_instr(region.warming.start);
    let region_first = workload.access_index_at_instr(region.detailed.start);
    let region_end = workload.access_index_at_instr(region.detailed.end);

    // Warm the replica.
    workload.for_each_access(warm_first..region_first, |a| {
        if !l1.lookup(a.line()) && mshr.on_miss(a.line(), a.index) == MshrOutcome::Allocated {
            l1.fill(a.line());
        }
    });
    // Walk the region: first access per line decides key-ness.
    let mut keyset = KeySet::new();
    let mut assoc = LimitedAssocModel::new();
    let mut seen = LineSet::new();
    workload.for_each_access(region_first..region_end, |a| {
        let line = a.line();
        assoc.observe(a.pc, line);
        let first_access = seen.insert(line);
        let l1_hit = l1.lookup(line);
        let mshr_hit = !l1_hit && mshr.on_miss(line, a.index) == MshrOutcome::DelayedHit;
        if !l1_hit {
            l1.fill(line);
        }
        if first_access && !l1_hit && !mshr_hit {
            keyset.insert_first(
                line,
                KeyInfo {
                    first_access_index: a.index,
                    pc: a.pc,
                },
            );
        }
    });
    debug_assert!(region_end * p >= region.detailed.start);
    ScoutOutput { keyset, assoc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn setup() -> (impl Workload, MachineConfig, Vec<Region>) {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan();
        (w, machine, plan.regions)
    }

    #[test]
    fn keys_are_a_subset_of_region_unique_lines() {
        let (w, machine, regions) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let r = &regions[0];
        let out = scout_region(&w, &machine, &cost, &mut clock, r, 0, 1);
        let region_first = w.access_index_at_instr(r.detailed.start);
        let region_end = w.access_index_at_instr(r.detailed.end);
        let unique: delorean_trace::LineSet = w
            .iter_range(region_first..region_end)
            .map(|a| a.line())
            .collect();
        assert!(out.keyset.len() <= unique.len());
        assert!(out.keyset.lines().all(|l| unique.contains(l)));
        assert!(clock.seconds() > 0.0);
    }

    #[test]
    fn key_first_access_indices_are_in_region() {
        let (w, machine, regions) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let r = &regions[1];
        let out = scout_region(
            &w,
            &machine,
            &cost,
            &mut clock,
            r,
            regions[0].detailed.end,
            1,
        );
        let region_first = w.access_index_at_instr(r.detailed.start);
        let region_end = w.access_index_at_instr(r.detailed.end);
        for (line, info) in out.keyset.iter() {
            assert!(
                (region_first..region_end).contains(&info.first_access_index),
                "key {line:?} outside region"
            );
            assert_eq!(w.access_at(info.first_access_index).line(), line);
        }
    }

    #[test]
    fn hot_workload_has_few_keys() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let out = scout_region(&w, &machine, &cost, &mut clock, &plan.regions[1], 0, 1);
        // bwaves is lukewarm-dominated: nearly everything filters out.
        assert!(out.keyset.len() < 200, "bwaves keys = {}", out.keyset.len());
    }

    #[test]
    fn deterministic() {
        let (w, machine, regions) = setup();
        let cost = CostModel::paper_host();
        let mut c1 = HostClock::new();
        let mut c2 = HostClock::new();
        let a = scout_region(&w, &machine, &cost, &mut c1, &regions[0], 0, 1);
        let b = scout_region(&w, &machine, &cost, &mut c2, &regions[0], 0, 1);
        let mut la: Vec<_> = a.keyset.lines().collect();
        let mut lb: Vec<_> = b.keyset.lines().collect();
        la.sort_unstable();
        lb.sort_unstable();
        assert_eq!(la, lb);
        assert_eq!(c1.seconds(), c2.seconds());
    }
}
