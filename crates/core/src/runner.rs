//! The end-to-end DeLorean runner.

use crate::analyst::{run_analyst, AnalystInput};
use crate::config::DeLoreanConfig;
use crate::dsw::DswCounts;
use crate::explorer::{pending_from_keyset, run_explorer, PendingKey};
use crate::scout::scout_region;
use crate::stats::TtStats;
use crate::MAX_EXPLORERS;
use delorean_cache::MachineConfig;
use delorean_cpu::TimingConfig;
use delorean_sampling::{
    Region, RegionPlan, RegionReport, SamplingStrategy, SimulationReport, StrategyReport,
};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost, WorkKind};

/// Result of a DeLorean run: the strategy-comparable report plus the
/// time-traveling statistics behind Figures 6–8.
#[derive(Clone, Debug)]
pub struct DeLoreanOutput {
    /// CPI/MPKI/cost report, directly comparable with the baselines.
    pub report: SimulationReport,
    /// Key-set, explorer and trap statistics.
    pub stats: TtStats,
    /// DSW classification counters summed over regions.
    pub dsw_counts: DswCounts,
}

/// Strategy extras attached by [`DeLoreanRunner`]'s
/// [`SamplingStrategy::run`]: the time-traveling statistics and DSW
/// classification counters behind Figures 6–8.
#[derive(Clone, Debug, PartialEq)]
pub struct DeLoreanExtras {
    /// Key-set, explorer and trap statistics.
    pub stats: TtStats,
    /// DSW classification counters summed over regions.
    pub dsw_counts: DswCounts,
}

impl From<DeLoreanOutput> for StrategyReport {
    fn from(out: DeLoreanOutput) -> Self {
        StrategyReport::new(out.report).with_extras(DeLoreanExtras {
            stats: out.stats,
            dsw_counts: out.dsw_counts,
        })
    }
}

impl TryFrom<StrategyReport> for DeLoreanOutput {
    type Error = &'static str;

    /// Recover the full output from a trait-object run. Fails only if the
    /// report did not come from a DeLorean strategy.
    fn try_from(report: StrategyReport) -> Result<Self, Self::Error> {
        let (report, extras) = report.split::<DeLoreanExtras>();
        let extras = extras.ok_or("report carries no DeLorean extras")?;
        Ok(DeLoreanOutput {
            report,
            stats: extras.stats,
            dsw_counts: extras.dsw_counts,
        })
    }
}

/// Per-region artifacts produced by the warming passes (Scout +
/// Explorers); consumed by one or more Analysts.
#[derive(Clone, Debug)]
pub(crate) struct RegionArtifacts {
    pub region: Region,
    pub input: AnalystInput,
    pub keys: u64,
    pub engaged: u64,
    pub resolved_by: [u64; MAX_EXPLORERS],
    pub cold_keys: u64,
    pub vicinity_samples: u64,
    pub false_positive_traps: u64,
    pub true_hit_traps: u64,
}

/// Run Scout + Explorers for one region, charging the per-pass clocks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warm_region(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cost: &CostModel,
    config: &DeLoreanConfig,
    region: &Region,
    prev_end_instr: u64,
    work_multiplier: u64,
    scout_clock: &mut HostClock,
    explorer_clocks: &mut [HostClock],
) -> RegionArtifacts {
    let scout = scout_region(
        workload,
        machine,
        cost,
        scout_clock,
        region,
        prev_end_instr,
        work_multiplier,
    );
    scout_clock.charge(cost.transfer_seconds);

    let deepest_window = *config
        .explorer_windows_instrs
        .last()
        .expect("validated config has windows")
        / workload.mem_period().max(1);
    let mut artifacts = RegionArtifacts {
        region: region.clone(),
        input: AnalystInput {
            assoc: scout.assoc,
            warming_miss_as_hit: config.warming_miss_as_hit,
            censoring_horizon_accesses: deepest_window,
            ..Default::default()
        },
        keys: scout.keyset.len() as u64,
        engaged: 0,
        resolved_by: [0; MAX_EXPLORERS],
        cold_keys: 0,
        vicinity_samples: 0,
        false_positive_traps: 0,
        true_hit_traps: 0,
    };
    let mut pending: Vec<PendingKey> = pending_from_keyset(&scout.keyset);
    let interval = region.warming.start.saturating_sub(prev_end_instr);

    for (k, (&window, clock)) in config
        .explorer_windows_instrs
        .iter()
        .zip(explorer_clocks.iter_mut())
        .enumerate()
    {
        if pending.is_empty() {
            // Not engaged: the pass still advances over the interval.
            clock.charge(cost.instr_seconds(WorkKind::Vff, interval * work_multiplier));
            continue;
        }
        artifacts.engaged += 1;
        let prev_window = if k == 0 {
            0
        } else {
            config.explorer_windows_instrs[k - 1]
        };
        // VFF the part of the interval the exclusive profiling slice does
        // not cover.
        let vff_part = interval.saturating_sub(window - prev_window);
        clock.charge(cost.instr_seconds(WorkKind::Vff, vff_part * work_multiplier));
        let out = run_explorer(
            workload,
            cost,
            clock,
            k,
            window,
            prev_window,
            region,
            &pending,
            config.vicinity_period_accesses,
            config.seed,
            work_multiplier,
        );
        clock.charge(cost.transfer_seconds);
        artifacts.resolved_by[k] += out.resolved.len() as u64;
        for (line, rd) in out.resolved {
            artifacts.input.key_rds.insert(line, rd);
        }
        artifacts.input.vicinity.merge(&out.vicinity);
        artifacts.vicinity_samples += out.vicinity_count;
        artifacts.false_positive_traps += out.scan.false_positives;
        artifacts.true_hit_traps += out.scan.true_hits;
        pending = out.remaining;
    }
    artifacts.cold_keys = pending.len() as u64;
    artifacts
}

/// The DeLorean (DSW + TT) sampled-simulation runner.
#[derive(Clone, Debug)]
pub struct DeLoreanRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    config: DeLoreanConfig,
}

impl DeLoreanRunner {
    /// A runner with Table 1 timing and paper-host costs.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(machine: MachineConfig, config: DeLoreanConfig) -> Self {
        config.validate().expect("invalid DeLorean config");
        DeLoreanRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            config,
        }
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The machine this runner simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The methodology configuration.
    pub fn config(&self) -> &DeLoreanConfig {
        &self.config
    }

    /// The timing configuration.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// The host cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Run all passes serially in one thread (identical results to the
    /// pipelined [`SamplingStrategy::run`]; useful for debugging and as
    /// the test oracle for the pipeline).
    pub fn run_serial(&self, workload: &dyn Workload, plan: &RegionPlan) -> DeLoreanOutput {
        let mult = plan.config.work_multiplier();
        let n_explorers = self.config.explorer_windows_instrs.len();
        let mut scout_clock = HostClock::new();
        let mut explorer_clocks = vec![HostClock::new(); n_explorers];
        let mut analyst_clock = HostClock::new();
        let mut stats = TtStats::default();
        let mut dsw_counts = DswCounts::default();
        let mut regions = Vec::with_capacity(plan.regions.len());
        let mut prev_end = 0u64;

        for region in &plan.regions {
            let artifacts = warm_region(
                workload,
                &self.machine,
                &self.cost,
                &self.config,
                region,
                prev_end,
                mult,
                &mut scout_clock,
                &mut explorer_clocks,
            );
            let analyst = run_analyst(
                workload,
                &self.machine,
                &self.timing,
                &self.cost,
                &mut analyst_clock,
                region,
                &artifacts.input,
                mult,
            );
            accumulate(&mut stats, &artifacts);
            dsw_counts.merge(&analyst.counts);
            regions.push(RegionReport {
                region: region.index,
                detailed: analyst.detailed,
            });
            prev_end = region.detailed.end;
        }

        let mut cost = RunCost::new(plan.regions.len() as u64);
        cost.push("scout", scout_clock);
        for (k, c) in explorer_clocks.into_iter().enumerate() {
            cost.push(format!("explorer-{}", k + 1), c);
        }
        cost.push("analyst", analyst_clock);
        let report = SimulationReport {
            workload: workload.name().to_string(),
            strategy: "delorean".into(),
            regions,
            collected_reuse_distances: stats.collected_reuse_distances(),
            cost,
            covered_instrs: plan.represented_instrs(),
        };
        DeLoreanOutput {
            report,
            stats,
            dsw_counts,
        }
    }
}

impl SamplingStrategy for DeLoreanRunner {
    fn name(&self) -> &str {
        "delorean"
    }

    /// Run the multi-threaded pipelined TT implementation. The
    /// time-traveling statistics and DSW counters ride along as
    /// [`DeLoreanExtras`]; recover the full [`DeLoreanOutput`] with
    /// `TryFrom<StrategyReport>`.
    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        crate::pipeline::run_pipelined(
            workload,
            &self.machine,
            &self.timing,
            &self.cost,
            &self.config,
            plan,
        )
        .into()
    }

    /// One thread per TT pass: Scout + the explorer chain + Analyst.
    fn internal_parallelism(&self) -> usize {
        self.config.explorer_windows_instrs.len() + 2
    }
}

/// Fold one region's artifacts into the run statistics.
pub(crate) fn accumulate(stats: &mut TtStats, artifacts: &RegionArtifacts) {
    stats.regions += 1;
    stats.keys_per_region.push(artifacts.keys);
    for (a, b) in stats
        .resolved_by_explorer
        .iter_mut()
        .zip(&artifacts.resolved_by)
    {
        *a += b;
    }
    stats.cold_keys += artifacts.cold_keys;
    stats.engaged_sum += artifacts.engaged;
    stats.vicinity_samples += artifacts.vicinity_samples;
    stats.false_positive_traps += artifacts.false_positive_traps;
    stats.true_hit_traps += artifacts.true_hit_traps;
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::{SamplingConfig, SmartsRunner};
    use delorean_trace::{spec_workload, Scale};

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    fn runner() -> DeLoreanRunner {
        DeLoreanRunner::new(
            MachineConfig::for_scale(Scale::tiny()),
            DeLoreanConfig::for_scale(Scale::tiny()),
        )
    }

    #[test]
    fn serial_run_produces_complete_output() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let out = runner().run_serial(&w, &quick_plan());
        assert_eq!(out.report.regions.len(), 3);
        assert_eq!(out.stats.regions, 3);
        assert!(out.report.cpi() > 0.0);
        assert_eq!(out.report.strategy, "delorean");
        // Keys were found and (mostly) resolved.
        assert!(out.stats.total_keys() > 0);
        assert!(out.stats.collected_reuse_distances() > 0);
    }

    #[test]
    fn accuracy_close_to_smarts_reference() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let delorean = runner().run_serial(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        let err = delorean.report.cpi_error_vs(&smarts);
        assert!(
            err < 0.30,
            "DeLorean CPI {} vs SMARTS {} (err {err})",
            delorean.report.cpi(),
            smarts.cpi()
        );
    }

    #[test]
    fn faster_than_smarts() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let delorean = runner().run_serial(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        let speedup = delorean.report.speedup_vs(&smarts);
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn explorer_engagement_is_bounded() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let out = runner().run_serial(&w, &quick_plan());
        let avg = out.stats.avg_explorers_engaged();
        assert!((0.0..=4.0).contains(&avg), "avg explorers {avg}");
    }

    #[test]
    fn serial_is_deterministic() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let a = runner().run_serial(&w, &plan);
        let b = runner().run_serial(&w, &plan);
        assert_eq!(a.report.cpi(), b.report.cpi());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dsw_counts, b.dsw_counts);
    }
}
