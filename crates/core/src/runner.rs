//! The end-to-end DeLorean runner.

use crate::analyst::{run_analyst, AnalystInput};
use crate::config::DeLoreanConfig;
use crate::dsw::DswCounts;
use crate::explorer::{pending_from_keyset, run_explorer, PendingKey};
use crate::scout::scout_region;
use crate::stats::TtStats;
use crate::MAX_EXPLORERS;
use delorean_cache::MachineConfig;
use delorean_cpu::TimingConfig;
use delorean_sampling::{
    FaultPolicy, PartialReport, Region, RegionPlan, RegionReport, RegionScheduler,
    SamplingStrategy, SimulationReport, StrategyReport, UnitFailure,
};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost, WorkKind};

/// Result of a DeLorean run: the strategy-comparable report plus the
/// time-traveling statistics behind Figures 6–8.
#[derive(Clone, Debug)]
pub struct DeLoreanOutput {
    /// CPI/MPKI/cost report, directly comparable with the baselines.
    pub report: SimulationReport,
    /// Key-set, explorer and trap statistics.
    pub stats: TtStats,
    /// DSW classification counters summed over regions.
    pub dsw_counts: DswCounts,
}

/// Strategy extras attached by [`DeLoreanRunner`]'s
/// [`SamplingStrategy::run`]: the time-traveling statistics and DSW
/// classification counters behind Figures 6–8.
#[derive(Clone, Debug, PartialEq)]
pub struct DeLoreanExtras {
    /// Key-set, explorer and trap statistics.
    pub stats: TtStats,
    /// DSW classification counters summed over regions.
    pub dsw_counts: DswCounts,
}

impl From<DeLoreanOutput> for StrategyReport {
    fn from(out: DeLoreanOutput) -> Self {
        StrategyReport::new(out.report).with_extras(DeLoreanExtras {
            stats: out.stats,
            dsw_counts: out.dsw_counts,
        })
    }
}

impl TryFrom<StrategyReport> for DeLoreanOutput {
    type Error = &'static str;

    /// Recover the full output from a trait-object run. Fails only if the
    /// report did not come from a DeLorean strategy.
    fn try_from(report: StrategyReport) -> Result<Self, Self::Error> {
        let (report, extras) = report.split::<DeLoreanExtras>();
        let extras = extras.ok_or("report carries no DeLorean extras")?;
        Ok(DeLoreanOutput {
            report,
            stats: extras.stats,
            dsw_counts: extras.dsw_counts,
        })
    }
}

/// Per-region artifacts produced by the warming passes (Scout +
/// Explorers); consumed by one or more Analysts.
#[derive(Clone, Debug)]
pub(crate) struct RegionArtifacts {
    pub region: Region,
    pub input: AnalystInput,
    pub keys: u64,
    pub engaged: u64,
    pub resolved_by: [u64; MAX_EXPLORERS],
    pub cold_keys: u64,
    pub vicinity_samples: u64,
    pub false_positive_traps: u64,
    pub true_hit_traps: u64,
}

/// Run Scout + Explorers for one region, charging the per-pass clocks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warm_region(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cost: &CostModel,
    config: &DeLoreanConfig,
    region: &Region,
    prev_end_instr: u64,
    work_multiplier: u64,
    scout_clock: &mut HostClock,
    explorer_clocks: &mut [HostClock],
) -> RegionArtifacts {
    let scout = scout_region(
        workload,
        machine,
        cost,
        scout_clock,
        region,
        prev_end_instr,
        work_multiplier,
    );
    scout_clock.charge(cost.transfer_seconds);

    let deepest_window = *config
        .explorer_windows_instrs
        .last()
        // lint:allow(no-unwrap): run() validates the config before any region work, so windows are non-empty
        .expect("validated config has windows")
        / workload.mem_period().max(1);
    let mut artifacts = RegionArtifacts {
        region: region.clone(),
        input: AnalystInput {
            assoc: scout.assoc,
            warming_miss_as_hit: config.warming_miss_as_hit,
            censoring_horizon_accesses: deepest_window,
            ..Default::default()
        },
        keys: scout.keyset.len() as u64,
        engaged: 0,
        resolved_by: [0; MAX_EXPLORERS],
        cold_keys: 0,
        vicinity_samples: 0,
        false_positive_traps: 0,
        true_hit_traps: 0,
    };
    let mut pending: Vec<PendingKey> = pending_from_keyset(&scout.keyset);
    let interval = region.warming.start.saturating_sub(prev_end_instr);

    for (k, (&window, clock)) in config
        .explorer_windows_instrs
        .iter()
        .zip(explorer_clocks.iter_mut())
        .enumerate()
    {
        if pending.is_empty() {
            // Not engaged: the pass still advances over the interval.
            clock.charge(cost.instr_seconds(WorkKind::Vff, interval * work_multiplier));
            continue;
        }
        artifacts.engaged += 1;
        let prev_window = if k == 0 {
            0
        } else {
            config.explorer_windows_instrs[k - 1]
        };
        // VFF the part of the interval the exclusive profiling slice does
        // not cover.
        let vff_part = interval.saturating_sub(window - prev_window);
        clock.charge(cost.instr_seconds(WorkKind::Vff, vff_part * work_multiplier));
        let out = run_explorer(
            workload,
            cost,
            clock,
            k,
            window,
            prev_window,
            region,
            &pending,
            config.vicinity_period_accesses,
            config.seed,
            work_multiplier,
        );
        clock.charge(cost.transfer_seconds);
        artifacts.resolved_by[k] += out.resolved.len() as u64;
        for (line, rd) in out.resolved {
            artifacts.input.key_rds.insert(line, rd);
        }
        artifacts.input.vicinity.merge(&out.vicinity);
        artifacts.vicinity_samples += out.vicinity_count;
        artifacts.false_positive_traps += out.scan.false_positives;
        artifacts.true_hit_traps += out.scan.true_hits;
        pending = out.remaining;
    }
    artifacts.cold_keys = pending.len() as u64;
    artifacts
}

/// The DeLorean (DSW + TT) sampled-simulation runner.
#[derive(Clone, Debug)]
pub struct DeLoreanRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    config: DeLoreanConfig,
    workers: usize,
}

impl DeLoreanRunner {
    /// A runner with Table 1 timing and paper-host costs.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(machine: MachineConfig, config: DeLoreanConfig) -> Self {
        // lint:allow(no-unwrap): documented # Panics contract — the runner refuses to start on an invalid config
        config.validate().expect("invalid DeLorean config");
        // DeLorean has always run multi-threaded by default (the TT pass
        // pipeline before PR 5 used one thread per pass); the region
        // scheduler keeps that default with the same thread footprint —
        // explorers + Scout + Analyst — capped by the host. Safe because
        // worker count never changes results, and bounded so batch
        // executors dividing their pools by `internal_parallelism` keep
        // running cells in parallel.
        let workers = RegionScheduler::host()
            .workers()
            .min(config.explorer_windows_instrs.len() + 2);
        DeLoreanRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            config,
            workers,
        }
    }

    /// Set the region-scheduler worker count [`SamplingStrategy::run`]
    /// uses (default: the host's available parallelism, capped at the
    /// pass-pipeline footprint of explorers + 2). Time-traveling makes
    /// every region's Scout → Explorers → Analyst chain an independent
    /// unit (the paper's core claim), so the whole plan fans out;
    /// results are byte-identical for every value.
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The machine this runner simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The methodology configuration.
    pub fn config(&self) -> &DeLoreanConfig {
        &self.config
    }

    /// The timing configuration.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// The host cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Run all passes serially in one thread: the region scheduler at
    /// one worker, and the reference execution every other mode —
    /// region-parallel at any worker count, pass-pipelined
    /// ([`run_pipelined`](crate::pipeline::run_pipelined)) — must
    /// reproduce.
    pub fn run_serial(&self, workload: &dyn Workload, plan: &RegionPlan) -> DeLoreanOutput {
        self.run_at(workload, plan, 1)
    }

    /// Run region-parallel at an explicit worker count. Time-traveling
    /// makes each region's Scout → Explorer chain → Analyst an
    /// independent unit (`prev_end` — the previous region's detailed
    /// end — comes from the *plan*, not from execution state), so units
    /// fan out across workers and reduce in plan order. The report,
    /// statistics and DSW counts are byte-identical for every
    /// `workers` value.
    pub fn run_at(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> DeLoreanOutput {
        let units = RegionScheduler::new(workers)
            .run_units(&plan.regions, self.region_output(workload, plan));
        self.reduce_outputs(workload, plan, units.into_iter().map(Some).collect())
    }

    /// Run region-parallel with per-unit panic isolation: each region's
    /// Scout → Explorers → Analyst chain is guarded, retried from the
    /// top (it is a pure function of `(index, region)` — `prev_end`
    /// comes from the plan) and quarantined on budget exhaustion. A
    /// clean run reduces exactly the same unit sequence as [`run_at`],
    /// so its output is byte-identical.
    ///
    /// [`run_at`]: DeLoreanRunner::run_at
    pub fn run_at_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> (DeLoreanOutput, Vec<UnitFailure>) {
        let (units, quarantined) = RegionScheduler::new(workers).run_units_isolated(
            &plan.regions,
            policy,
            self.region_output(workload, plan),
        );
        (self.reduce_outputs(workload, plan, units), quarantined)
    }

    /// The per-region unit body shared by the plain and fault-isolated
    /// paths: Scout → Explorer chain → Analyst over one region, with all
    /// pass clocks local to the unit. A pure function of
    /// `(index, region)`, so the isolated path may retry it from the
    /// top.
    fn region_output<'a>(
        &'a self,
        workload: &'a dyn Workload,
        plan: &'a RegionPlan,
    ) -> impl Fn(u32, &Region) -> RegionOutput + Sync + 'a {
        let mult = plan.config.work_multiplier();
        let n_explorers = self.config.explorer_windows_instrs.len();

        move |i: u32, region: &Region| {
            let prev_end = if i == 0 {
                0
            } else {
                plan.regions[i as usize - 1].detailed.end
            };
            let mut scout_clock = HostClock::new();
            let mut explorer_clocks = vec![HostClock::new(); n_explorers];
            let mut analyst_clock = HostClock::new();
            let artifacts = warm_region(
                workload,
                &self.machine,
                &self.cost,
                &self.config,
                region,
                prev_end,
                mult,
                &mut scout_clock,
                &mut explorer_clocks,
            );
            let analyst = run_analyst(
                workload,
                &self.machine,
                &self.timing,
                &self.cost,
                &mut analyst_clock,
                region,
                &artifacts.input,
                mult,
            );
            RegionOutput {
                report: RegionReport {
                    region: region.index,
                    detailed: analyst.detailed,
                },
                artifacts,
                counts: analyst.counts,
                scout_seconds: scout_clock.seconds(),
                explorer_seconds: explorer_clocks.iter().map(|c| c.seconds()).collect(),
                analyst_seconds: analyst_clock.seconds(),
            }
        }
    }

    /// Input-ordered reduction: fold per-pass clocks, statistics and
    /// DSW counts region by region, so the assembled output (f64 sums
    /// included) has one fixed shape for every worker count. Quarantined
    /// units arrive as `None` and contribute nothing — no pass seconds,
    /// no cost unit, no statistics.
    fn reduce_outputs(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        units: Vec<Option<RegionOutput>>,
    ) -> DeLoreanOutput {
        let n_explorers = self.config.explorer_windows_instrs.len();
        let mut scout_clock = HostClock::new();
        let mut explorer_clocks = vec![HostClock::new(); n_explorers];
        let mut analyst_clock = HostClock::new();
        let mut stats = TtStats::default();
        let mut dsw_counts = DswCounts::default();
        let mut regions = Vec::with_capacity(plan.regions.len());
        let mut cost = RunCost::new(plan.regions.len() as u64);
        for unit in units {
            let Some(unit) = unit else { continue };
            scout_clock.charge(unit.scout_seconds);
            for (clock, s) in explorer_clocks.iter_mut().zip(&unit.explorer_seconds) {
                clock.charge(*s);
            }
            analyst_clock.charge(unit.analyst_seconds);
            let mut unit_clock = HostClock::new();
            unit_clock.charge(unit.scout_seconds);
            for s in &unit.explorer_seconds {
                unit_clock.charge(*s);
            }
            unit_clock.charge(unit.analyst_seconds);
            cost.push_unit(unit.report.region, 0.0, unit_clock.seconds());
            accumulate(&mut stats, &unit.artifacts);
            dsw_counts.merge(&unit.counts);
            regions.push(unit.report);
        }

        cost.push("scout", scout_clock);
        for (k, c) in explorer_clocks.into_iter().enumerate() {
            cost.push(format!("explorer-{}", k + 1), c);
        }
        cost.push("analyst", analyst_clock);
        let report = SimulationReport {
            workload: workload.name().to_string(),
            strategy: "delorean".into(),
            regions,
            collected_reuse_distances: stats.collected_reuse_distances(),
            cost,
            covered_instrs: plan.represented_instrs(),
        };
        DeLoreanOutput {
            report,
            stats,
            dsw_counts,
        }
    }
}

/// One region unit's complete output, reduced in plan order by
/// [`DeLoreanRunner::run_at`].
struct RegionOutput {
    report: RegionReport,
    artifacts: RegionArtifacts,
    counts: DswCounts,
    scout_seconds: f64,
    explorer_seconds: Vec<f64>,
    analyst_seconds: f64,
}

impl SamplingStrategy for DeLoreanRunner {
    fn name(&self) -> &str {
        "delorean"
    }

    /// Run region-parallel at the configured worker count (see
    /// [`DeLoreanRunner::with_region_workers`]). The time-traveling
    /// statistics and DSW counters ride along as [`DeLoreanExtras`];
    /// recover the full [`DeLoreanOutput`] with
    /// `TryFrom<StrategyReport>`. The §3.2-faithful pass pipeline is
    /// still available as
    /// [`run_pipelined`](crate::pipeline::run_pipelined).
    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_at(workload, plan, self.workers).into()
    }

    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        self.run_at(workload, plan, workers).into()
    }

    /// Region-parallel with per-unit panic isolation (see
    /// [`DeLoreanRunner::run_at_isolated`]); the time-traveling extras
    /// are dropped here — harness code that needs partial statistics
    /// should call `run_at_isolated` directly.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        let (out, quarantined) = self.run_at_isolated(workload, plan, workers, policy);
        PartialReport {
            report: out.report,
            quarantined,
        }
    }

    /// The configured region-scheduler worker count.
    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

/// Fold one region's artifacts into the run statistics.
pub(crate) fn accumulate(stats: &mut TtStats, artifacts: &RegionArtifacts) {
    stats.regions += 1;
    stats.keys_per_region.push(artifacts.keys);
    for (a, b) in stats
        .resolved_by_explorer
        .iter_mut()
        .zip(&artifacts.resolved_by)
    {
        *a += b;
    }
    stats.cold_keys += artifacts.cold_keys;
    stats.engaged_sum += artifacts.engaged;
    stats.vicinity_samples += artifacts.vicinity_samples;
    stats.false_positive_traps += artifacts.false_positive_traps;
    stats.true_hit_traps += artifacts.true_hit_traps;
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::{SamplingConfig, SmartsRunner};
    use delorean_trace::{spec_workload, Scale};

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    fn runner() -> DeLoreanRunner {
        DeLoreanRunner::new(
            MachineConfig::for_scale(Scale::tiny()),
            DeLoreanConfig::for_scale(Scale::tiny()),
        )
    }

    #[test]
    fn serial_run_produces_complete_output() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let out = runner().run_serial(&w, &quick_plan());
        assert_eq!(out.report.regions.len(), 3);
        assert_eq!(out.stats.regions, 3);
        assert!(out.report.cpi() > 0.0);
        assert_eq!(out.report.strategy, "delorean");
        // Keys were found and (mostly) resolved.
        assert!(out.stats.total_keys() > 0);
        assert!(out.stats.collected_reuse_distances() > 0);
    }

    #[test]
    fn accuracy_close_to_smarts_reference() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let delorean = runner().run_serial(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        let err = delorean.report.cpi_error_vs(&smarts);
        assert!(
            err < 0.30,
            "DeLorean CPI {} vs SMARTS {} (err {err})",
            delorean.report.cpi(),
            smarts.cpi()
        );
    }

    #[test]
    fn faster_than_smarts() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let delorean = runner().run_serial(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        let speedup = delorean.report.speedup_vs(&smarts);
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn explorer_engagement_is_bounded() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let out = runner().run_serial(&w, &quick_plan());
        let avg = out.stats.avg_explorers_engaged();
        assert!((0.0..=4.0).contains(&avg), "avg explorers {avg}");
    }

    #[test]
    fn serial_is_deterministic() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let a = runner().run_serial(&w, &plan);
        let b = runner().run_serial(&w, &plan);
        assert_eq!(a.report.cpi(), b.report.cpi());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dsw_counts, b.dsw_counts);
    }
}
