//! Directed statistical warming: the Figure 3 classifier.
//!
//! For an access of the detailed region that missed the lukewarm cache and
//! MSHRs, decide — without any functional warming — whether a perfectly
//! warmed cache would have served it:
//!
//! 1. **Set-full conflict**: the referenced set of the lukewarm cache is
//!    already full, so the access is certainly a conflict miss.
//! 2. **Dominant-stride conflict**: the limited-associativity model says
//!    this PC's stride restricts it to a fraction of the sets; its stack
//!    distance is compared against that *effective* cache size.
//! 3. **Capacity**: the key reuse distance (exact, collected by the
//!    explorers) converted to a stack distance via the vicinity StatStack
//!    profile exceeds the cache size.
//! 4. **Cold**: no access to the line was found within the deepest
//!    explorer window — a genuine cold miss.
//! 5. Everything else is a **warming miss** — an artifact of insufficient
//!    warming — and is modeled as a hit.

use delorean_cache::ReplacementPolicy;
use delorean_statmodel::assoc::LimitedAssocModel;
use delorean_statmodel::{ReuseProfile, StatCacheModel};
use delorean_trace::{LineAddr, LineMap, Pc};
use serde::{Deserialize, Serialize};

/// Verdict for a lukewarm-missing access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DswVerdict {
    /// The lukewarm set was full: certain conflict miss.
    ConflictSetFull,
    /// Conflict miss predicted by the limited-associativity model.
    ConflictStride,
    /// Stack distance exceeds the cache: capacity miss.
    CapacityMiss,
    /// First-ever access to the line (no reuse within the deepest
    /// window): cold miss.
    ColdMiss,
    /// Insufficient warming; modeled as a hit.
    WarmingMiss,
}

impl DswVerdict {
    /// `true` when the access is modeled as a real miss.
    pub fn is_miss(&self) -> bool {
        !matches!(self, DswVerdict::WarmingMiss)
    }
}

/// Per-verdict counters (reported by the analyst).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DswCounts {
    /// Set-full conflict misses.
    pub conflict_set_full: u64,
    /// Stride-model conflict misses.
    pub conflict_stride: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Cold misses.
    pub cold: u64,
    /// Warming misses (modeled as hits).
    pub warming: u64,
}

impl DswCounts {
    /// Record one verdict.
    pub fn record(&mut self, v: DswVerdict) {
        match v {
            DswVerdict::ConflictSetFull => self.conflict_set_full += 1,
            DswVerdict::ConflictStride => self.conflict_stride += 1,
            DswVerdict::CapacityMiss => self.capacity += 1,
            DswVerdict::ColdMiss => self.cold += 1,
            DswVerdict::WarmingMiss => self.warming += 1,
        }
    }

    /// Total classified accesses.
    pub fn total(&self) -> u64 {
        self.conflict_set_full + self.conflict_stride + self.capacity + self.cold + self.warming
    }

    /// Accumulate another counter block.
    pub fn merge(&mut self, other: &DswCounts) {
        self.conflict_set_full += other.conflict_set_full;
        self.conflict_stride += other.conflict_stride;
        self.capacity += other.capacity;
        self.cold += other.cold;
        self.warming += other.warming;
    }
}

/// The statistical warming model of one detailed region.
#[derive(Clone, Debug, Default)]
pub struct DswModel {
    /// Exact backward reuse distance (in accesses) of each resolved key.
    key_rds: LineMap<u64>,
    /// Vicinity reuse-distance profile (drives StatStack).
    vicinity: ReuseProfile,
    /// Dominant-stride detection per PC.
    assoc: LimitedAssocModel,
    /// Modeled cache geometry.
    llc_sets: u64,
    llc_ways: u64,
    /// Reuse-distance threshold above which an access is a capacity miss.
    /// For LRU this comes from StatStack's critical reuse distance; for
    /// random replacement from the StatCache fixpoint (§4.1 generality).
    capacity_rd_threshold: u64,
    /// Deepest explorer window in accesses: keys unresolved after the last
    /// explorer are *censored* at this distance, not known-cold. 0 means
    /// "treat unresolved keys as cold" (conservative).
    deepest_window_accesses: u64,
}

impl DswModel {
    /// Build a model for an LRU cache of `llc_sets × llc_ways` lines.
    pub fn new(
        key_rds: LineMap<u64>,
        vicinity: ReuseProfile,
        assoc: LimitedAssocModel,
        llc_sets: u64,
        llc_ways: u64,
    ) -> Self {
        Self::with_replacement(
            key_rds,
            vicinity,
            assoc,
            llc_sets,
            llc_ways,
            ReplacementPolicy::Lru,
        )
    }

    /// Build a model for a cache with an explicit replacement policy.
    ///
    /// LRU, FIFO and tree-PLRU use the StatStack stack-distance criterion
    /// (stack ≥ capacity ⇒ miss). Random and NMRU use the StatCache
    /// random-replacement model: solve the global miss-ratio fixpoint
    /// `m`, then classify an access as a capacity miss when its survival
    /// probability `(1 − 1/L)^{m·rd}` drops below one half.
    pub fn with_replacement(
        key_rds: LineMap<u64>,
        vicinity: ReuseProfile,
        assoc: LimitedAssocModel,
        llc_sets: u64,
        llc_ways: u64,
        replacement: ReplacementPolicy,
    ) -> Self {
        let lines = llc_sets * llc_ways;
        let capacity_rd_threshold = match replacement {
            // Stack-distance criterion: exact for LRU, an established
            // approximation for its tree/insertion-order/age-based
            // relatives (Pan & Jonsson; Sen & Wood, cited in §4.1).
            ReplacementPolicy::Lru
            | ReplacementPolicy::Fifo
            | ReplacementPolicy::PLru
            | ReplacementPolicy::Srrip => vicinity.critical_reuse_distance(lines),
            ReplacementPolicy::Random | ReplacementPolicy::Nmru => {
                random_replacement_threshold(&vicinity, lines)
            }
        };
        DswModel {
            key_rds,
            vicinity,
            assoc,
            llc_sets,
            llc_ways,
            capacity_rd_threshold,
            deepest_window_accesses: 0,
        }
    }

    /// Set the censoring horizon: keys unresolved after the deepest
    /// explorer have reuse distance *at least* this, and classify as cold
    /// misses only if even that lower bound already exceeds the cache
    /// (otherwise the line may well still be resident in a large LLC —
    /// SMARTS's continuously-warm hierarchy would hit it).
    pub fn with_censoring_horizon(mut self, deepest_window_accesses: u64) -> Self {
        self.deepest_window_accesses = deepest_window_accesses;
        self
    }

    /// `true` if an access with backward reuse distance `rd` is predicted
    /// to miss the modeled cache on capacity grounds.
    pub fn predicts_capacity_miss(&self, rd: u64) -> bool {
        rd > self.capacity_rd_threshold
    }

    /// The cache capacity in lines.
    pub fn cache_lines(&self) -> u64 {
        self.llc_sets * self.llc_ways
    }

    /// The vicinity profile.
    pub fn vicinity(&self) -> &ReuseProfile {
        &self.vicinity
    }

    /// Number of resolved key reuse distances.
    pub fn resolved_keys(&self) -> usize {
        self.key_rds.len()
    }

    /// Classify a lukewarm-missing access (Figure 3, after the lukewarm
    /// and MSHR stages).
    ///
    /// `lukewarm_set_full` is whether the referenced set of the lukewarm
    /// cache was full *before* this access's fill.
    pub fn classify_miss(&self, pc: Pc, line: LineAddr, lukewarm_set_full: bool) -> DswVerdict {
        if lukewarm_set_full {
            return DswVerdict::ConflictSetFull;
        }
        let Some(&rd) = self.key_rds.get(line) else {
            // No reuse found within the deepest explorer window: the reuse
            // distance is censored at the window length. If even that
            // lower bound misses the cache, this is a (cold-like) miss;
            // in a cache large enough to span the whole window, the line
            // may still be resident — a warming artifact, modeled as hit.
            return if self.deepest_window_accesses == 0
                || self.predicts_capacity_miss(self.deepest_window_accesses)
            {
                DswVerdict::ColdMiss
            } else {
                DswVerdict::WarmingMiss
            };
        };
        let effective = self.assoc.effective_lines(pc, self.llc_sets, self.llc_ways);
        if effective < self.cache_lines() && self.vicinity.stack_distance(rd) >= effective as f64 {
            return DswVerdict::ConflictStride;
        }
        if self.predicts_capacity_miss(rd) {
            return DswVerdict::CapacityMiss;
        }
        DswVerdict::WarmingMiss
    }
}

/// Reuse-distance threshold for a random-replacement cache of `lines`
/// lines: solve the StatCache fixpoint for the global miss ratio `m`, then
/// find the distance at which survival `(1 − 1/L)^{m·rd}` falls to 0.5.
fn random_replacement_threshold(vicinity: &ReuseProfile, lines: u64) -> u64 {
    if lines <= 1 {
        return 0;
    }
    let m = StatCacheModel::new().miss_ratio(vicinity, lines);
    if m <= f64::EPSILON {
        // Nothing misses: every reuse survives.
        return u64::MAX;
    }
    let ln_survive = (1.0 - 1.0 / lines as f64).ln();
    // (1 - 1/L)^{m·rd} = 0.5  ⇒  rd = ln 0.5 / (m · ln(1 − 1/L))
    let rd = (0.5f64).ln() / (m * ln_survive);
    if rd >= u64::MAX as f64 {
        u64::MAX
    } else {
        rd as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(key_rds: &[(u64, u64)], vicinity_rds: &[(u64, f64)]) -> DswModel {
        let mut vicinity = ReuseProfile::new();
        for &(d, w) in vicinity_rds {
            vicinity.record(d, w);
        }
        DswModel::new(
            key_rds.iter().map(|&(l, d)| (LineAddr(l), d)).collect(),
            vicinity,
            LimitedAssocModel::new(),
            128,
            8,
        )
    }

    #[test]
    fn set_full_wins_over_everything() {
        let m = model_with(&[(1, 5)], &[(10, 1.0)]);
        assert_eq!(
            m.classify_miss(Pc(1), LineAddr(1), true),
            DswVerdict::ConflictSetFull
        );
    }

    #[test]
    fn short_key_reuse_is_warming_miss() {
        // Key rd 100 with an all-unique vicinity → stack ≈ 100 < 1024.
        let m = model_with(&[(1, 100)], &[(1_000_000, 1.0)]);
        assert_eq!(
            m.classify_miss(Pc(1), LineAddr(1), false),
            DswVerdict::WarmingMiss
        );
    }

    #[test]
    fn long_key_reuse_is_capacity_miss() {
        let m = model_with(&[(1, 1_000_000)], &[(1_000_000, 1.0)]);
        assert_eq!(
            m.classify_miss(Pc(1), LineAddr(1), false),
            DswVerdict::CapacityMiss
        );
    }

    #[test]
    fn unknown_line_is_cold() {
        let m = model_with(&[], &[(10, 1.0)]);
        assert_eq!(
            m.classify_miss(Pc(1), LineAddr(42), false),
            DswVerdict::ColdMiss
        );
    }

    #[test]
    fn vicinity_compression_turns_capacity_into_warming() {
        // Key rd 10_000 but vicinity says reuses are short (rd 10): the
        // window holds ~10 unique lines → stack ≈ 10 ≪ 1024 → warming miss.
        let m = model_with(&[(1, 10_000)], &[(10, 100.0)]);
        assert_eq!(
            m.classify_miss(Pc(1), LineAddr(1), false),
            DswVerdict::WarmingMiss
        );
    }

    #[test]
    fn strided_pc_conflicts_in_effective_cache() {
        let mut assoc = LimitedAssocModel::new();
        // Train a dominant stride of 128 lines = the set count → 1 set
        // effective (8 lines).
        for i in 0..20u64 {
            assoc.observe(Pc(7), LineAddr(i * 128));
        }
        let mut vicinity = ReuseProfile::new();
        vicinity.record(1_000_000, 1.0); // all-unique conversion
        let m = DswModel::new(
            [(LineAddr(1), 100u64)].into_iter().collect(),
            vicinity,
            assoc,
            128,
            8,
        );
        // Stack ≈ 100 ≥ 8 effective lines → stride conflict,
        // even though 100 < 1024 total lines.
        assert_eq!(
            m.classify_miss(Pc(7), LineAddr(1), false),
            DswVerdict::ConflictStride
        );
        // Other PCs are unaffected.
        assert_eq!(
            m.classify_miss(Pc(8), LineAddr(1), false),
            DswVerdict::WarmingMiss
        );
    }

    #[test]
    fn counts_record_and_merge() {
        let mut c = DswCounts::default();
        c.record(DswVerdict::WarmingMiss);
        c.record(DswVerdict::CapacityMiss);
        c.record(DswVerdict::ColdMiss);
        assert_eq!(c.total(), 3);
        let mut d = c;
        d.merge(&c);
        assert_eq!(d.total(), 6);
        assert_eq!(d.warming, 2);
    }

    #[test]
    fn random_replacement_softens_the_knee() {
        // A vicinity of exact reuses right at the cache size plus a cold
        // trickle (without cold mass the StatCache fixpoint degenerates to
        // zero misses): LRU misses the at-capacity reuses, random
        // replacement keeps the survival-probability fraction.
        let mut vicinity = ReuseProfile::new();
        vicinity.record(1_000, 100.0);
        vicinity.record_cold(5.0);
        let keys: LineMap<u64> = [(LineAddr(1), 1_000u64)].into_iter().collect();
        let lru = DswModel::with_replacement(
            keys.clone(),
            vicinity.clone(),
            LimitedAssocModel::new(),
            128,
            8,
            ReplacementPolicy::Lru,
        );
        let rnd = DswModel::with_replacement(
            keys,
            vicinity,
            LimitedAssocModel::new(),
            128,
            8,
            ReplacementPolicy::Random,
        );
        // Under LRU a reuse of ~1000 in a 1024-line cache is borderline;
        // at rd = 2000 it must miss.
        assert!(lru.predicts_capacity_miss(2_000));
        // Under random replacement with a low global miss ratio, survival
        // at rd = 2000 is still above one half.
        assert!(!rnd.predicts_capacity_miss(2_000));
        // But sufficiently long reuses miss under any policy.
        assert!(rnd.predicts_capacity_miss(100_000_000));
    }

    #[test]
    fn random_threshold_edge_cases() {
        let empty = ReuseProfile::new();
        // Empty vicinity → miss ratio 0 → nothing classified as capacity.
        assert_eq!(random_replacement_threshold(&empty, 1024), u64::MAX);
        let mut hostile = ReuseProfile::new();
        hostile.record(1 << 30, 10.0);
        let t = random_replacement_threshold(&hostile, 64);
        assert!(t > 0 && t < 1 << 30, "threshold {t}");
        assert_eq!(random_replacement_threshold(&hostile, 1), 0);
    }

    #[test]
    fn verdict_miss_flags() {
        assert!(!DswVerdict::WarmingMiss.is_miss());
        assert!(DswVerdict::CapacityMiss.is_miss());
        assert!(DswVerdict::ColdMiss.is_miss());
        assert!(DswVerdict::ConflictSetFull.is_miss());
        assert!(DswVerdict::ConflictStride.is_miss());
    }
}
