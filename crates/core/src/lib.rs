//! DeLorean: directed statistical warming through time traveling.
//!
//! This crate implements the paper's primary contribution on top of the
//! substrate crates:
//!
//! * **Directed statistical warming (DSW)** — instead of collecting many
//!   random reuse distances (CoolSim), collect only the *key reuse
//!   distances*: for each unique cacheline whose first access in the
//!   detailed region misses the lukewarm cache, the backward distance to
//!   its last access in the warm-up interval, plus a sparse *vicinity*
//!   reuse-distance distribution used for the StatStack reuse→stack
//!   conversion. The [`dsw`] classifier then labels each would-be miss as
//!   lukewarm hit / MSHR hit / conflict miss / capacity miss / *warming
//!   miss* (a sampling artifact, modeled as a hit) — Figure 3 of the
//!   paper.
//!
//! * **Time traveling (TT)** — the multi-pass pipeline that makes DSW
//!   collectable in a single run: a [`scout`] fast-forwards to the region
//!   and records the key cachelines ("look into the future"); the
//!   [`explorer`]s go *back in time*, profiling windows of 5 M / 50 M /
//!   100 M / 1 B instructions before the region until every key's last
//!   access is found (Explorer-1 via functional simulation, the rest via
//!   virtualized directed profiling with page-granularity watchpoints);
//!   the [`analyst`] finally evaluates the detailed region with DSW.
//!   Passes run pipelined across regions ([`pipeline`]), mirroring the
//!   paper's one-process-per-pass design over OS pipes with threads over
//!   crossbeam channels.
//!
//! * **Design-space exploration** ([`dse`]) — a single Scout + Explorer
//!   set feeds many parallel Analysts with different cache
//!   configurations; warm-up cost is paid once because reuse distances
//!   are microarchitecture-independent (§3.3, Figure 14).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyst;
mod config;
pub mod dse;
pub mod dsw;
pub mod explorer;
mod keyset;
pub mod pipeline;
mod runner;
pub mod scout;
mod stats;

pub use config::DeLoreanConfig;
pub use keyset::{KeyInfo, KeySet};
pub use runner::{DeLoreanExtras, DeLoreanOutput, DeLoreanRunner};
pub use stats::TtStats;

/// Maximum number of Explorer passes (the paper's implementation uses 4).
pub const MAX_EXPLORERS: usize = 4;
