//! The Explorer passes: go back in time.
//!
//! Explorer *k* profiles a window of `windows[k]` instructions ending at
//! the region start, looking for the **last** access before the region to
//! each still-unresolved key cacheline, and sampling *vicinity* reuse
//! distances at the configured rate.
//!
//! Mechanism follows §3.3:
//!
//! * **Explorer-1** uses functional simulation (gem5's atomic CPU): the
//!   full key set would trap far too often under page-granularity
//!   watchpoints (hot lines live on hot pages), so the first, short window
//!   is simply interpreted.
//! * **Explorers 2..4** use virtualized directed profiling (VDP): run at
//!   near-native VFF speed with watchpoints on the remaining keys —
//!   progressively fewer lines with progressively lower temporal locality,
//!   which is what keeps trap counts tolerable. Key watchpoints stay armed
//!   for the whole window (the *last* access is wanted); vicinity
//!   watchpoints disarm on first reuse.
//!
//! The hot loop runs on the flat lookup substrate: a fused
//! [`InterestFilter`] decides the dominant "nothing interesting here"
//! access with a single hashed bit probe (watched pages for VDP, exact
//! key/vicinity lines for the functional pass), and only filter hits fall
//! through to the exact [`LineMap`] tables and the refcounted
//! [`WatchSet`].

use crate::keyset::KeySet;
use delorean_sampling::Region;
use delorean_statmodel::ReuseProfile;
use delorean_trace::{CounterRng, InterestFilter, LineAddr, LineMap, Workload, WorkloadExt};
use delorean_virt::{CostModel, HostClock, Trap, WatchScanStats, WatchSet, WorkKind};

/// A key cacheline still waiting for its last prior access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PendingKey {
    /// The watched line.
    pub line: LineAddr,
    /// Global access index of its first access in the region.
    pub first_access_index: u64,
}

/// Sentinel for "no access to this key seen yet" in the fused key table.
const NOT_SEEN: u64 = u64::MAX;

/// What one explorer produced for one region.
#[derive(Clone, Debug, Default)]
pub struct ExplorerOutcome {
    /// Keys resolved in this window: `(line, exact backward reuse distance
    /// in accesses)`.
    pub resolved: Vec<(LineAddr, u64)>,
    /// Keys still unresolved (reuse beyond this window).
    pub remaining: Vec<PendingKey>,
    /// Vicinity samples collected in this window.
    pub vicinity: ReuseProfile,
    /// Number of vicinity reuse distances recorded (non-cold).
    pub vicinity_count: u64,
    /// Trap statistics (zero for the functional Explorer-1).
    pub scan: WatchScanStats,
}

/// Run explorer `index` (0-based) over its window for one region.
///
/// `window_instrs` is this explorer's full window length and
/// `prev_window_instrs` the previous explorer's (0 for Explorer-1); the
/// scan covers the *exclusive* slice
/// `[region_start − window, region_start − prev_window)`, clamped at
/// instruction 0 — the remainder of the window was already covered by the
/// shallower explorers, whose keys are resolved, so no true hit can occur
/// there. Interval work is charged at represented magnitude via
/// `work_multiplier`; traps at face value.
#[allow(clippy::too_many_arguments)]
pub fn run_explorer(
    workload: &dyn Workload,
    cost: &CostModel,
    clock: &mut HostClock,
    index: usize,
    window_instrs: u64,
    prev_window_instrs: u64,
    region: &Region,
    pending: &[PendingKey],
    vicinity_period_accesses: u64,
    seed: u64,
    work_multiplier: u64,
) -> ExplorerOutcome {
    debug_assert!(prev_window_instrs < window_instrs);
    let start_instr = region.start_instr.saturating_sub(window_instrs);
    let end_instr = region.start_instr.saturating_sub(prev_window_instrs);
    let first = workload.access_index_at_instr(start_instr);
    let end = workload.access_index_at_instr(end_instr);
    let p = workload.mem_period();
    let functional = index == 0;

    // Cost: Explorer-1 interprets its window; later explorers VFF it and
    // pay per trap. (The pass-level VFF across the rest of the interval is
    // charged by the runner.)
    let span_accesses = end.saturating_sub(first);
    clock.charge(cost.instr_seconds(
        if functional {
            WorkKind::Functional
        } else {
            WorkKind::Vff
        },
        span_accesses * p * work_multiplier,
    ));

    // Fused interest filter: one counting bitmap covering watched pages ∪
    // key lines ∪ vicinity-pending lines, so the dominant "nothing
    // interesting here" access is decided by a single hashed bit probe.
    // One probe suffices because the two explorer kinds each need only
    // one domain: a VDP explorer watches every key and armed vicinity
    // line, so the watched *pages* already cover all three sets (and the
    // page test must fire on false-positive traps anyway); the
    // functional Explorer-1 has no watchpoints, so only exact *line*
    // membership matters.
    let mut filter = InterestFilter::with_capacity_for(pending.len() + 1024);
    // Key membership and last-seen tracking fused into one table: the
    // cold path pays a single probe for both.
    let mut keys: LineMap<u64> = LineMap::with_capacity(pending.len());
    let mut watch = WatchSet::new();
    for k in pending {
        keys.insert(k.line, NOT_SEEN);
        if functional {
            filter.insert_line(k.line);
        } else {
            watch.watch_line(k.line);
            filter.insert_page(k.line.page());
        }
    }

    let rng = CounterRng::new(seed ^ ((index as u64 + 1) << 48) ^ region.index as u64);
    let mut vicinity = ReuseProfile::new();
    let mut vicinity_count = 0u64;
    let mut vicinity_pending: LineMap<u64> = LineMap::new();
    let mut scan = WatchScanStats {
        accesses_scanned: span_accesses,
        ..Default::default()
    };

    workload.for_each_access(first..end, |a| {
        let line = a.line();
        let interesting = if functional {
            filter.contains_line(line)
        } else {
            filter.contains_page(line.page())
        };
        if interesting {
            // Trap accounting (VDP explorers only): any access to a
            // watched page costs a trap, watched line or not.
            if !functional {
                match watch.classify_line(line) {
                    Trap::None => {}
                    Trap::FalsePositive => {
                        scan.false_positives += 1;
                        clock.charge(cost.trap_seconds);
                    }
                    Trap::Hit(_) => {
                        scan.true_hits += 1;
                        clock.charge(cost.trap_seconds);
                    }
                }
            }
            // Key tracking: remember the latest access to each pending key.
            if let Some(seen) = keys.get_mut(line) {
                *seen = a.index;
            }
            // Vicinity: resolve an armed sample on reuse. The key
            // watchpoint (if any) on the same line stays armed: watch
            // references are refcounted, so disarming the vicinity side
            // never drops a key that must live for the whole window.
            if let Some(set_at) = vicinity_pending.remove(line) {
                vicinity.record(a.index - set_at - 1, 1.0);
                vicinity_count += 1;
                if functional {
                    filter.remove_line(line);
                } else {
                    watch.unwatch_line(line);
                    filter.remove_page(line.page());
                }
            }
        }
        // Arm new vicinity samples at the configured rate.
        if rng.chance_one_in(a.index, vicinity_period_accesses) && !vicinity_pending.contains(line)
        {
            vicinity_pending.insert(line, a.index);
            if functional {
                filter.insert_line(line);
            } else {
                watch.watch_line(line);
                filter.insert_page(line.page());
            }
        }
    });
    // Vicinity samples with no reuse before the scan end are *censored*:
    // the reuse is at least as long as the remaining window. Record them
    // at the censoring distance (a lower bound) rather than as cold —
    // treating them as infinite would inflate stack-distance estimates in
    // proportion to the censored fraction, which is large for the deep
    // explorers' exclusive windows.
    for (_, set_at) in vicinity_pending.drain() {
        vicinity.record(end.saturating_sub(set_at + 1).max(1), 1.0);
    }

    let mut resolved = Vec::new();
    let mut remaining = Vec::new();
    for k in pending {
        match keys.get(k.line) {
            Some(&pos) if pos != NOT_SEEN && pos < k.first_access_index => {
                resolved.push((k.line, k.first_access_index - pos - 1));
            }
            _ => remaining.push(*k),
        }
    }
    ExplorerOutcome {
        resolved,
        remaining,
        vicinity,
        vicinity_count,
        scan,
    }
}

/// Convert a key set into the pending list for Explorer-1.
pub fn pending_from_keyset(keyset: &KeySet) -> Vec<PendingKey> {
    let mut v: Vec<PendingKey> = keyset
        .iter()
        .map(|(line, info)| PendingKey {
            line,
            first_access_index: info.first_access_index,
        })
        .collect();
    // Deterministic order regardless of hash-map iteration.
    v.sort_unstable_by_key(|k| k.line);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn setup() -> (impl Workload, Region) {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        (w, plan.regions[1].clone())
    }

    /// Brute-force the true backward reuse distance of `line` from
    /// `first_idx`, or None if absent in the last `max_back` accesses.
    fn true_backward_rd(
        w: &dyn Workload,
        line: LineAddr,
        first_idx: u64,
        max_back: u64,
    ) -> Option<u64> {
        let lo = first_idx.saturating_sub(max_back);
        (lo..first_idx)
            .rev()
            .find(|&k| w.access_at(k).line() == line)
            .map(|k| first_idx - k - 1)
    }

    #[test]
    fn functional_explorer_finds_exact_last_access() {
        let (w, region) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let region_first = w.access_index_at_instr(region.detailed.start);
        // Take a few real region lines as keys.
        let pending: Vec<PendingKey> = (0..40)
            .map(|i| w.access_at(region_first + i))
            .map(|a| PendingKey {
                line: a.line(),
                first_access_index: a.index,
            })
            .collect();
        let window = 30_000u64;
        let out = run_explorer(
            &w, &cost, &mut clock, 0, window, 0, &region, &pending, 1_000, 7, 1,
        );
        assert_eq!(out.scan.traps(), 0, "functional explorer must not trap");
        for &(line, rd) in &out.resolved {
            let first_idx = pending
                .iter()
                .find(|k| k.line == line)
                .unwrap()
                .first_access_index;
            // Verify against brute force within the window.
            let window_accesses = first_idx - w.access_index_at_instr(region.start_instr - window);
            let truth = true_backward_rd(&w, line, first_idx, window_accesses);
            assert_eq!(Some(rd), truth, "line {line:?}");
        }
    }

    #[test]
    fn vdp_explorer_matches_functional_result() {
        let (w, region) = setup();
        let cost = CostModel::paper_host();
        let pending: Vec<PendingKey> = {
            let region_first = w.access_index_at_instr(region.detailed.start);
            (0..20)
                .map(|i| w.access_at(region_first + i * 3))
                .map(|a| PendingKey {
                    line: a.line(),
                    first_access_index: a.index,
                })
                .collect()
        };
        let mut c1 = HostClock::new();
        let mut c2 = HostClock::new();
        let f = run_explorer(
            &w, &cost, &mut c1, 0, 20_000, 0, &region, &pending, 1_000, 7, 1,
        );
        let v = run_explorer(
            &w, &cost, &mut c2, 1, 20_000, 0, &region, &pending, 1_000, 7, 1,
        );
        let mut fr = f.resolved.clone();
        let mut vr = v.resolved.clone();
        fr.sort_unstable_by_key(|&(l, _)| l);
        vr.sort_unstable_by_key(|&(l, _)| l);
        assert_eq!(fr, vr, "VDP and functional must agree on key rds");
        assert!(v.scan.traps() > 0, "VDP should trap on key pages");
    }

    #[test]
    fn key_watchpoints_survive_vicinity_overlap() {
        // Regression for the key/vicinity watchpoint clash: with a
        // vicinity period of 1 every access arms a sample, so the key
        // lines themselves are armed and later disarmed as vicinity
        // samples. The key watchpoints must stay armed for the whole
        // window — every access to a key line keeps trapping as a hit.
        let (w, region) = setup();
        let cost = CostModel::paper_host();
        let region_first = w.access_index_at_instr(region.detailed.start);
        let pending: Vec<PendingKey> = (0..10)
            .map(|i| w.access_at(region_first + i * 7))
            .map(|a| PendingKey {
                line: a.line(),
                first_access_index: a.index,
            })
            .collect();
        let window = 20_000u64;
        let mut c1 = HostClock::new();
        let mut c2 = HostClock::new();
        let f = run_explorer(&w, &cost, &mut c1, 0, window, 0, &region, &pending, 1, 7, 1);
        let v = run_explorer(&w, &cost, &mut c2, 1, window, 0, &region, &pending, 1, 7, 1);
        // Functional and VDP still agree on the resolved reuse distances.
        let mut fr = f.resolved.clone();
        let mut vr = v.resolved.clone();
        fr.sort_unstable_by_key(|&(l, _)| l);
        vr.sort_unstable_by_key(|&(l, _)| l);
        assert_eq!(fr, vr);
        // Every scanned access to a key line must be a true hit: the key
        // stays watched even after an overlapping vicinity sample
        // resolves. (The pre-refcount WatchSet dropped the key watch on
        // vicinity resolution and undercounted these.)
        let first = w.access_index_at_instr(region.start_instr.saturating_sub(window));
        let end = w.access_index_at_instr(region.start_instr);
        let key_lines: Vec<LineAddr> = pending.iter().map(|k| k.line).collect();
        let key_accesses = w
            .iter_range(first..end)
            .filter(|a| key_lines.contains(&a.line()))
            .count() as u64;
        assert!(key_accesses > 0, "degenerate window");
        assert!(
            v.scan.true_hits >= key_accesses,
            "true hits {} < key-line accesses {}: a key watchpoint was dropped",
            v.scan.true_hits,
            key_accesses
        );
    }

    #[test]
    fn wider_windows_resolve_more() {
        let (w, region) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        // A synthetic far-fetched key: a line that does not appear close to
        // the region. Find one by probing backward.
        let region_first = w.access_index_at_instr(region.detailed.start);
        let probe = w.access_at(region_first.saturating_sub(15_000));
        let pending = vec![PendingKey {
            line: probe.line(),
            first_access_index: region_first + 1,
        }];
        let narrow = run_explorer(
            &w, &cost, &mut clock, 0, 3_000, 0, &region, &pending, 10_000, 7, 1,
        );
        let wide = run_explorer(
            &w,
            &cost,
            &mut clock,
            0,
            region.start_instr,
            0,
            &region,
            &pending,
            10_000,
            7,
            1,
        );
        assert!(wide.resolved.len() >= narrow.resolved.len());
        assert_eq!(wide.resolved.len() + wide.remaining.len(), 1);
    }

    #[test]
    fn vicinity_sampling_collects_at_rate() {
        let (w, region) = setup();
        let cost = CostModel::paper_host();
        let mut clock = HostClock::new();
        let out = run_explorer(&w, &cost, &mut clock, 0, 60_000, 0, &region, &[], 100, 7, 1);
        // 60k instructions / period 3 = 20k accesses, rate 1/100 → ~200
        // samples armed; hot lines reuse fast so most resolve.
        assert!(
            out.vicinity_count > 100,
            "vicinity samples {}",
            out.vicinity_count
        );
        assert!(out.vicinity.total_weight() >= out.vicinity_count as f64);
    }

    #[test]
    fn pending_from_keyset_is_sorted() {
        let mut ks = KeySet::new();
        for l in [5u64, 1, 9, 3] {
            ks.insert_first(
                LineAddr(l),
                crate::keyset::KeyInfo {
                    first_access_index: 100 + l,
                    pc: delorean_trace::Pc(0),
                },
            );
        }
        let pending = pending_from_keyset(&ks);
        let lines: Vec<u64> = pending.iter().map(|k| k.line.0).collect();
        assert_eq!(lines, vec![1, 3, 5, 9]);
    }
}
