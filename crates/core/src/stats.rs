//! Time-traveling statistics (Figures 7 and 8, plus key-set counts).

use crate::MAX_EXPLORERS;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of one DeLorean run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TtStats {
    /// Regions evaluated.
    pub regions: u64,
    /// Key cachelines per region (run order).
    pub keys_per_region: Vec<u64>,
    /// Key reuse distances resolved by each explorer (Figure 7).
    pub resolved_by_explorer: [u64; MAX_EXPLORERS],
    /// Keys unresolved after the last explorer (cold lines).
    pub cold_keys: u64,
    /// Explorers engaged, summed over regions (Figure 8 numerator).
    pub engaged_sum: u64,
    /// Vicinity reuse distances collected.
    pub vicinity_samples: u64,
    /// False-positive watchpoint traps across all explorers.
    pub false_positive_traps: u64,
    /// True-hit watchpoint traps across all explorers.
    pub true_hit_traps: u64,
}

impl TtStats {
    /// Total key cachelines across regions.
    pub fn total_keys(&self) -> u64 {
        self.keys_per_region.iter().sum()
    }

    /// Average key cachelines per region (paper: 151 on average).
    pub fn avg_keys_per_region(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.total_keys() as f64 / self.regions as f64
        }
    }

    /// Largest key set observed.
    pub fn max_keys_per_region(&self) -> u64 {
        self.keys_per_region.iter().copied().max().unwrap_or(0)
    }

    /// Smallest key set observed.
    pub fn min_keys_per_region(&self) -> u64 {
        self.keys_per_region.iter().copied().min().unwrap_or(0)
    }

    /// Average number of explorers engaged per region (Figure 8).
    pub fn avg_explorers_engaged(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.engaged_sum as f64 / self.regions as f64
        }
    }

    /// Fraction of resolved key reuse distances found by explorer `k`
    /// (Figure 7's stacked percentages).
    pub fn explorer_share(&self, k: usize) -> f64 {
        let resolved: u64 = self.resolved_by_explorer.iter().sum();
        if resolved == 0 || k >= MAX_EXPLORERS {
            0.0
        } else {
            self.resolved_by_explorer[k] as f64 / resolved as f64
        }
    }

    /// Total reuse distances collected: resolved keys plus vicinity
    /// samples (Figure 6's DeLorean bar).
    pub fn collected_reuse_distances(&self) -> u64 {
        self.resolved_by_explorer.iter().sum::<u64>() + self.vicinity_samples
    }

    /// Merge per-region stats into the aggregate.
    pub fn merge(&mut self, other: &TtStats) {
        self.regions += other.regions;
        self.keys_per_region
            .extend(other.keys_per_region.iter().copied());
        for (a, b) in self
            .resolved_by_explorer
            .iter_mut()
            .zip(&other.resolved_by_explorer)
        {
            *a += b;
        }
        self.cold_keys += other.cold_keys;
        self.engaged_sum += other.engaged_sum;
        self.vicinity_samples += other.vicinity_samples;
        self.false_positive_traps += other.false_positive_traps;
        self.true_hit_traps += other.true_hit_traps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = TtStats {
            regions: 2,
            keys_per_region: vec![100, 200],
            resolved_by_explorer: [150, 100, 40, 10],
            cold_keys: 0,
            engaged_sum: 5,
            vicinity_samples: 50,
            false_positive_traps: 7,
            true_hit_traps: 9,
        };
        assert_eq!(s.total_keys(), 300);
        assert!((s.avg_keys_per_region() - 150.0).abs() < 1e-12);
        assert_eq!(s.max_keys_per_region(), 200);
        assert_eq!(s.min_keys_per_region(), 100);
        assert!((s.avg_explorers_engaged() - 2.5).abs() < 1e-12);
        assert!((s.explorer_share(0) - 0.5).abs() < 1e-12);
        assert_eq!(s.collected_reuse_distances(), 350);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TtStats {
            regions: 1,
            keys_per_region: vec![10],
            resolved_by_explorer: [5, 0, 0, 0],
            engaged_sum: 1,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.regions, 2);
        assert_eq!(a.keys_per_region, vec![10, 10]);
        assert_eq!(a.resolved_by_explorer[0], 10);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = TtStats::default();
        assert_eq!(s.avg_keys_per_region(), 0.0);
        assert_eq!(s.avg_explorers_engaged(), 0.0);
        assert_eq!(s.explorer_share(0), 0.0);
        assert_eq!(s.explorer_share(99), 0.0);
        assert_eq!(s.max_keys_per_region(), 0);
    }
}
