//! Design-space exploration: one warm-up, many analysts.
//!
//! Reuse distance is microarchitecture-independent, so a single Scout +
//! Explorer chain can feed any number of Analysts simulating different
//! cache (or core) configurations (§3.3). The warm-up cost — which
//! dominates total cost by a factor the paper measures at ~235× over
//! detailed simulation — is paid once; each extra configuration adds only
//! an Analyst pass, giving the ~1.05× marginal cost for 10 parallel
//! analysts reported in §6.4.2. This module reproduces both numbers.

use crate::analyst::run_analyst;
use crate::config::DeLoreanConfig;
use crate::dsw::DswCounts;
use crate::runner::{accumulate, warm_region, DeLoreanOutput, RegionArtifacts};
use crate::stats::TtStats;
use delorean_cache::MachineConfig;
use delorean_cpu::TimingConfig;
use delorean_sampling::{RegionPlan, RegionReport, SimulationReport};
use delorean_trace::fault::{self, FaultPolicy, FaultSite, UnitFailure};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost};
use rayon::prelude::*;

/// Result of a design-space exploration run.
#[derive(Clone, Debug)]
pub struct DseOutput {
    /// One output per analyst configuration, in input order.
    pub outputs: Vec<DeLoreanOutput>,
    /// Host seconds spent in the shared warming passes (Scout +
    /// Explorers).
    pub warming_seconds: f64,
    /// Host seconds spent per analyst.
    pub analyst_seconds: Vec<f64>,
}

impl DseOutput {
    /// Ratio of warming cost to a single analyst's detailed-simulation
    /// cost (the paper reports ≈235×).
    pub fn warming_to_detailed_ratio(&self) -> f64 {
        match self.analyst_seconds.first() {
            Some(&a) if a > 0.0 => self.warming_seconds / a,
            _ => 0.0,
        }
    }

    /// Total resources of running `n` parallel analysts from one warm-up,
    /// relative to running one (the paper reports ≤1.05× for 10).
    pub fn marginal_cost_factor(&self, n: usize) -> f64 {
        let one = self.warming_seconds + self.analyst_seconds.first().copied().unwrap_or(0.0);
        if one == 0.0 {
            return 0.0;
        }
        // lint:allow(float-accum): analyst_seconds is indexed by analyst rank, a fixed plan order; the prefix sum is worker-count-invariant
        let n_total: f64 = self.warming_seconds + self.analyst_seconds.iter().take(n).sum::<f64>();
        n_total / one
    }
}

/// Explore several machine configurations from a single warm-up.
#[derive(Clone, Debug)]
pub struct DesignSpaceExplorer {
    /// Machine whose L1 side defines the key filter (shared across
    /// analysts; only LLC-side parameters should vary per analyst).
    base_machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    config: DeLoreanConfig,
}

impl DesignSpaceExplorer {
    /// An explorer sharing one warm-up across analyst configurations.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(base_machine: MachineConfig, config: DeLoreanConfig) -> Self {
        // lint:allow(no-unwrap): documented # Panics contract — construction fails fast on an invalid config
        config.validate().expect("invalid DeLorean config");
        DesignSpaceExplorer {
            base_machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            config,
        }
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Run the shared warm-up once and evaluate every analyst machine.
    ///
    /// All `analyst_machines` must share the base machine's L1/MSHR
    /// geometry (the key sets are collected against it); typically they
    /// differ only in LLC size — Figure 13/14's sweep.
    pub fn run(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        analyst_machines: &[MachineConfig],
    ) -> DseOutput {
        assert!(
            !analyst_machines.is_empty(),
            "need at least one analyst configuration"
        );
        for m in analyst_machines {
            assert_eq!(
                m.hierarchy.l1d, self.base_machine.hierarchy.l1d,
                "analyst machines must share the base L1-D geometry"
            );
        }
        let warmup = self.warm_all(workload, plan);

        // One analyst per machine, all fed from the same artifacts. The
        // analysts are mutually independent — reuse distances are
        // microarchitecture-independent, which is the whole point of §3.3
        // — so they fan out across worker threads. Each analyst is a
        // deterministic function of (machine, artifacts) and results are
        // collected in machine order, so the output is identical to the
        // serial loop for any thread count.
        let per_machine: Vec<(DeLoreanOutput, f64)> = analyst_machines
            .par_iter()
            .map(|machine| self.analyst_output(workload, plan, &warmup, machine))
            .collect();
        let (outputs, analyst_seconds) = per_machine.into_iter().unzip();
        DseOutput {
            outputs,
            warming_seconds: warmup.warming_seconds(),
            analyst_seconds,
        }
    }

    /// Like [`run`](DesignSpaceExplorer::run), with per-analyst panic
    /// isolation.
    ///
    /// The shared warm-up is one guarded, retryable unit (it is a pure
    /// function of the workload and plan); if it exhausts its budget the
    /// whole exploration is quarantined behind it. Each analyst is then
    /// an independent guarded unit (indices follow machine order):
    /// faulted analysts retry from the top, and exhausted ones leave a
    /// `None` slot so the surviving sweep keeps its machine indexing. A
    /// clean isolated run produces outputs byte-identical to
    /// [`run`](DesignSpaceExplorer::run)'s.
    pub fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        analyst_machines: &[MachineConfig],
        policy: &FaultPolicy,
    ) -> DsePartial {
        assert!(
            !analyst_machines.is_empty(),
            "need at least one analyst configuration"
        );
        for m in analyst_machines {
            assert_eq!(
                m.hierarchy.l1d, self.base_machine.hierarchy.l1d,
                "analyst machines must share the base L1-D geometry"
            );
        }
        let warmup = match fault::run_unit_guarded(0, policy, || self.warm_all(workload, plan)) {
            Ok(w) => w,
            Err(failure) => {
                return DsePartial {
                    outputs: analyst_machines.iter().map(|_| None).collect(),
                    warming_seconds: 0.0,
                    analyst_seconds: analyst_machines.iter().map(|_| None).collect(),
                    quarantined: vec![failure],
                }
            }
        };
        let indexed: Vec<(u32, &MachineConfig)> = analyst_machines
            .iter()
            .enumerate()
            .map(|(i, m)| (i as u32, m))
            .collect();
        let per_machine: Vec<Result<(DeLoreanOutput, f64), UnitFailure>> = indexed
            .par_iter()
            .map(|&(unit, machine)| {
                fault::run_unit_guarded(unit, policy, || {
                    fault::hit(FaultSite::UnitEntry, u64::from(unit));
                    self.analyst_output(workload, plan, &warmup, machine)
                })
            })
            .collect();
        let mut outputs = Vec::with_capacity(per_machine.len());
        let mut analyst_seconds = Vec::with_capacity(per_machine.len());
        let mut quarantined = Vec::new();
        for result in per_machine {
            match result {
                Ok((out, seconds)) => {
                    outputs.push(Some(out));
                    analyst_seconds.push(Some(seconds));
                }
                Err(failure) => {
                    outputs.push(None);
                    analyst_seconds.push(None);
                    quarantined.push(failure);
                }
            }
        }
        DsePartial {
            outputs,
            warming_seconds: warmup.warming_seconds(),
            analyst_seconds,
            quarantined,
        }
    }

    /// Run the shared Scout + Explorer warm-up over every region. A pure
    /// function of the workload and plan, so the isolated path may retry
    /// it as a whole.
    fn warm_all(&self, workload: &dyn Workload, plan: &RegionPlan) -> DseWarmup {
        let mult = plan.config.work_multiplier();
        let n_explorers = self.config.explorer_windows_instrs.len();
        let mut scout_clock = HostClock::new();
        let mut explorer_clocks = vec![HostClock::new(); n_explorers];
        let mut artifacts: Vec<RegionArtifacts> = Vec::with_capacity(plan.regions.len());
        let mut prev_end = 0u64;
        for region in &plan.regions {
            artifacts.push(warm_region(
                workload,
                &self.base_machine,
                &self.cost,
                &self.config,
                region,
                prev_end,
                mult,
                &mut scout_clock,
                &mut explorer_clocks,
            ));
            prev_end = region.detailed.end;
        }
        DseWarmup {
            artifacts,
            scout_clock,
            explorer_clocks,
        }
    }

    /// Evaluate one analyst machine against the shared warm-up: the
    /// per-machine unit body shared by the plain and fault-isolated
    /// fan-outs. Deterministic in `(machine, warmup)`, and retryable
    /// because the artifacts are only read.
    fn analyst_output(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        warmup: &DseWarmup,
        machine: &MachineConfig,
    ) -> (DeLoreanOutput, f64) {
        let mult = plan.config.work_multiplier();
        let mut analyst_clock = HostClock::new();
        let mut stats = TtStats::default();
        let mut dsw_counts = DswCounts::default();
        let mut reports = Vec::with_capacity(warmup.artifacts.len());
        for a in &warmup.artifacts {
            let out = run_analyst(
                workload,
                machine,
                &self.timing,
                &self.cost,
                &mut analyst_clock,
                &a.region,
                &a.input,
                mult,
            );
            accumulate(&mut stats, a);
            dsw_counts.merge(&out.counts);
            reports.push(RegionReport {
                region: a.region.index,
                detailed: out.detailed,
            });
        }
        let seconds = analyst_clock.seconds();

        let mut run_cost = RunCost::new(plan.regions.len() as u64);
        run_cost.push("scout", warmup.scout_clock);
        for (k, c) in warmup.explorer_clocks.iter().enumerate() {
            run_cost.push(format!("explorer-{}", k + 1), *c);
        }
        run_cost.push("analyst", analyst_clock);
        let output = DeLoreanOutput {
            report: SimulationReport {
                workload: workload.name().to_string(),
                strategy: "delorean".into(),
                regions: reports,
                collected_reuse_distances: stats.collected_reuse_distances(),
                cost: run_cost,
                covered_instrs: plan.represented_instrs(),
            },
            stats,
            dsw_counts,
        };
        (output, seconds)
    }
}

/// The shared warm-up product: per-region artifacts plus the pass clocks
/// every analyst's cost report copies.
struct DseWarmup {
    artifacts: Vec<RegionArtifacts>,
    scout_clock: HostClock,
    explorer_clocks: Vec<HostClock>,
}

impl DseWarmup {
    fn warming_seconds(&self) -> f64 {
        let explorer: f64 = self
            .explorer_clocks
            .iter()
            .map(|c| c.seconds())
            // lint:allow(float-accum): explorer clocks are indexed by pipeline stage, a fixed order independent of scheduling
            .sum();
        self.scout_clock.seconds() + explorer
    }
}

/// Result of a fault-isolated design-space exploration: slots keyed by
/// machine index so the sweep's shape survives quarantines.
#[derive(Debug)]
pub struct DsePartial {
    /// One completed output per analyst machine, `None` where the
    /// analyst was quarantined (or the warm-up itself failed).
    pub outputs: Vec<Option<DeLoreanOutput>>,
    /// Host seconds spent in the shared warming passes (0 when the
    /// warm-up was quarantined).
    pub warming_seconds: f64,
    /// Host seconds per analyst, aligned with `outputs`.
    pub analyst_seconds: Vec<Option<f64>>,
    /// Units that exhausted their retry budget, in machine order (or the
    /// single warm-up failure).
    pub quarantined: Vec<UnitFailure>,
}

impl DsePartial {
    /// True when every analyst completed.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn sweep(scale: Scale, sizes_paper: &[u64]) -> Vec<MachineConfig> {
        sizes_paper
            .iter()
            .map(|&s| MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, s))
            .collect()
    }

    #[test]
    fn one_warmup_many_analysts() {
        let scale = Scale::tiny();
        let w = spec_workload("lbm", scale, 1).unwrap();
        let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
        let machines = sweep(scale, &[1 << 20, 8 << 20, 64 << 20, 512 << 20]);
        let dse = DesignSpaceExplorer::new(
            MachineConfig::for_scale(scale),
            DeLoreanConfig::for_scale(scale),
        );
        let out = dse.run(&w, &plan, &machines);
        assert_eq!(out.outputs.len(), 4);
        assert_eq!(out.analyst_seconds.len(), 4);
        assert!(out.warming_seconds > 0.0);
        // Larger LLCs must not increase LLC MPKI.
        let mpki: Vec<f64> = out.outputs.iter().map(|o| o.report.llc_mpki()).collect();
        for w in mpki.windows(2) {
            assert!(w[1] <= w[0] + 0.5, "MPKI not (roughly) monotone: {mpki:?}");
        }
    }

    #[test]
    fn marginal_cost_is_small() {
        let scale = Scale::tiny();
        let w = spec_workload("hmmer", scale, 1).unwrap();
        let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
        let machines = sweep(
            scale,
            &[
                (1 << 20),
                2 << 20,
                4 << 20,
                8 << 20,
                16 << 20,
                32 << 20,
                64 << 20,
                128 << 20,
                256 << 20,
                512 << 20,
            ],
        );
        let dse = DesignSpaceExplorer::new(
            MachineConfig::for_scale(scale),
            DeLoreanConfig::for_scale(scale),
        );
        let out = dse.run(&w, &plan, &machines);
        let marginal = out.marginal_cost_factor(10);
        assert!(
            marginal < 2.0,
            "10 analysts should cost far less than 10×: {marginal}"
        );
        assert!(out.warming_to_detailed_ratio() > 1.0);
    }

    #[test]
    #[should_panic(expected = "share the base L1-D geometry")]
    fn rejects_mismatched_l1() {
        let scale = Scale::tiny();
        let w = spec_workload("hmmer", scale, 1).unwrap();
        let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
        let mut odd = MachineConfig::for_scale(scale);
        odd.hierarchy.l1d = delorean_cache::CacheConfig::new(4 << 10, 4);
        let dse = DesignSpaceExplorer::new(
            MachineConfig::for_scale(scale),
            DeLoreanConfig::for_scale(scale),
        );
        let _ = dse.run(&w, &plan, &[odd]);
    }
}
