//! `shard-broker`: run a strategy×workload sweep across worker
//! processes.
//!
//! ```text
//! shard-broker --smoke
//! shard-broker [--workers N] [--socket PATH --expect N]
//!              [--scale tiny|demo|paper] [--regions R] [--seed S]
//!              [--workloads a,b,...] [--strategies x,y,...]
//!              [--llc BYTES] [--split K] [--journal PATH]
//! ```
//!
//! `--workers N` (default 2) spawns `N` local `shard-worker` children
//! over stdio; `--socket PATH --expect N` listens on a Unix socket and
//! waits for `N` externally-started workers to connect. `--journal`
//! makes the sweep durable/resumable.
//!
//! `--smoke` runs the CI end-to-end check: a reference in-process
//! sweep, a broker+2-workers run with one worker killed mid-sweep, a
//! journaled run halted and resumed by a second broker, and a
//! span-leased run — each asserted bitwise equal to the reference.
//! Exits nonzero on any mismatch.

use delorean_bench::BatchExecutor;
use delorean_shard::{Broker, BrokerConfig, JobRequest, ShardRun, SweepSpec};
use delorean_trace::Scale;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};

fn worker_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "broker binary has no parent directory".to_string())?;
    let path = dir.join("shard-worker");
    if !path.exists() {
        return Err(format!(
            "worker binary not found at {} (build the workspace first)",
            path.display()
        ));
    }
    Ok(path)
}

/// Spawn a stdio worker child and attach it to the broker.
fn spawn_worker(broker: &Broker, extra_args: &[&str]) -> Result<Child, String> {
    let mut child = Command::new(worker_bin()?)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn shard-worker: {e}"))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "worker stdout not piped".to_string())?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| "worker stdin not piped".to_string())?;
    broker.attach(stdout, stdin);
    Ok(child)
}

fn reap(mut children: Vec<Child>) {
    for child in &mut children {
        let _ = child.wait();
    }
}

/// Compare a shard matrix against the in-process reference, bit for
/// bit per cell.
fn assert_matches(
    label: &str,
    run: &ShardRun,
    reference: &[Vec<delorean_sampling::StrategyReport>],
) -> Result<(), String> {
    if !run.run.quarantined.is_empty() {
        return Err(format!(
            "{label}: {} cell(s) unexpectedly quarantined: {}",
            run.run.quarantined.len(),
            run.run.quarantined[0]
        ));
    }
    for (w, (row, ref_row)) in run.run.matrix.iter().zip(reference).enumerate() {
        for (s, (cell, ref_cell)) in row.iter().zip(ref_row).enumerate() {
            match cell {
                Some(report) if report.report == ref_cell.report => {}
                Some(_) => {
                    return Err(format!(
                        "{label}: cell w{w}/s{s} differs from the reference"
                    ))
                }
                None => return Err(format!("{label}: cell w{w}/s{s} missing")),
            }
        }
    }
    Ok(())
}

fn smoke() -> Result<(), String> {
    let scale = Scale::tiny();
    let spec = SweepSpec::new(scale, 3)
        .with_suite_seed(3)
        .with_workloads(&["hmmer", "mcf"])
        .with_strategies(&["smarts", "coolsim", "mrrl", "checkpoint", "delorean"]);
    let plan = spec.plan();
    let strategies = spec.build_strategies().map_err(|e| e.to_string())?;
    let workloads = spec.build_workloads().map_err(|e| e.to_string())?;
    let reference = BatchExecutor::with_threads(2).run_matrix(&strategies, &workloads, &plan);
    println!(
        "smoke: reference matrix computed ({} cells)",
        spec.n_cells()
    );

    // Phase 1: two workers, one abandons (dies silently) after two
    // leases — the broker must re-lease its in-flight cell and finish.
    {
        let broker = Broker::new(BrokerConfig::default());
        let children = vec![
            spawn_worker(&broker, &["--abandon-after", "2"])?,
            spawn_worker(&broker, &[])?,
        ];
        let run = broker.run_matrix(spec.clone()).map_err(|e| e.to_string())?;
        assert_matches("kill-a-worker", &run, &reference)?;
        if run.lease_losses == 0 {
            return Err("kill-a-worker: expected at least one lease loss".to_string());
        }
        broker.shutdown();
        reap(children);
        println!(
            "smoke: kill-a-worker matrix identical ({} lease loss(es))",
            run.lease_losses
        );
    }

    // Phase 2: journaled run halted after 4 completions (a broker
    // kill), then a second broker resumes the journal to completion.
    {
        let journal =
            std::env::temp_dir().join(format!("delorean-shard-smoke-{}.dlj", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let first = Broker::new(BrokerConfig::default());
        let children = vec![spawn_worker(&first, &[])?, spawn_worker(&first, &[])?];
        let halted = first
            .submit(
                JobRequest::new(spec.clone())
                    .with_journal(journal.clone())
                    .with_cell_budget(4),
            )
            .wait()
            .map_err(|e| e.to_string())?;
        first.shutdown();
        reap(children);
        if !halted.halted && halted.run.quarantined.is_empty() {
            let complete = halted.run.matrix.iter().flatten().all(|c| c.is_some());
            if complete {
                return Err("halted run unexpectedly completed everything".to_string());
            }
        }
        let second = Broker::new(BrokerConfig::default());
        let children = vec![spawn_worker(&second, &[])?, spawn_worker(&second, &[])?];
        let resumed = second
            .submit(JobRequest::new(spec.clone()).with_journal(journal.clone()))
            .wait()
            .map_err(|e| e.to_string())?;
        second.shutdown();
        reap(children);
        assert_matches("broker-restart", &resumed, &reference)?;
        if resumed.run.resumed_cells < 4 {
            return Err(format!(
                "broker-restart: expected >= 4 resumed cells, got {}",
                resumed.run.resumed_cells
            ));
        }
        let _ = std::fs::remove_file(&journal);
        println!(
            "smoke: broker-restart matrix identical ({} resumed, {} executed)",
            resumed.run.resumed_cells, resumed.run.executed_cells
        );
    }

    // Phase 3: span leases — decomposable strategies split into region
    // spans, folded broker-side, still bitwise identical.
    {
        let span_spec = SweepSpec::new(scale, 3)
            .with_suite_seed(3)
            .with_workloads(&["hmmer", "mcf"])
            .with_strategies(&["coolsim", "mrrl"])
            .with_split_regions(2);
        let span_strategies = span_spec.build_strategies().map_err(|e| e.to_string())?;
        let span_reference =
            BatchExecutor::with_threads(2).run_matrix(&span_strategies, &workloads, &plan);
        let broker = Broker::new(BrokerConfig::default());
        let children = vec![spawn_worker(&broker, &[])?, spawn_worker(&broker, &[])?];
        let run = broker.run_matrix(span_spec).map_err(|e| e.to_string())?;
        broker.shutdown();
        reap(children);
        assert_matches("span-leases", &run, &span_reference)?;
        println!("smoke: span-leased matrix identical");
    }

    println!("smoke: all phases passed");
    Ok(())
}

struct ServeArgs {
    workers: usize,
    socket: Option<String>,
    expect: usize,
    spec: SweepSpec,
    journal: Option<PathBuf>,
}

fn parse_serve_args() -> Result<Option<ServeArgs>, String> {
    let mut workers = 2usize;
    let mut socket = None;
    let mut expect = 0usize;
    let mut scale = Scale::demo();
    let mut regions = 4u32;
    let mut seed = 1u64;
    let mut workload_names = vec!["hmmer".to_string(), "mcf".to_string()];
    let mut strategy_names = vec![
        "smarts".to_string(),
        "coolsim".to_string(),
        "delorean".to_string(),
    ];
    let mut llc = None;
    let mut split = None;
    let mut journal = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => return Ok(None),
            "--workers" => workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--socket" => socket = Some(value("--socket")?),
            "--expect" => expect = value("--expect")?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => {
                scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::tiny(),
                    "demo" => Scale::demo(),
                    "paper" => Scale::paper(),
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--regions" => regions = value("--regions")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--workloads" => {
                workload_names = value("--workloads")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--strategies" => {
                strategy_names = value("--strategies")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--llc" => llc = Some(value("--llc")?.parse().map_err(|e| format!("{e}"))?),
            "--split" => split = Some(value("--split")?.parse().map_err(|e| format!("{e}"))?),
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let mut spec = SweepSpec::new(scale, regions).with_suite_seed(seed);
    spec.workloads = workload_names;
    spec.strategies = strategy_names;
    spec.llc_paper_bytes = llc;
    spec.split_regions = split;
    Ok(Some(ServeArgs {
        workers,
        socket,
        expect,
        spec,
        journal,
    }))
}

fn serve(args: ServeArgs) -> Result<(), String> {
    let broker = Broker::new(BrokerConfig::default());
    let mut children = Vec::new();
    match &args.socket {
        Some(path) => {
            let expect = args.expect.max(1);
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
            eprintln!("shard-broker: waiting for {expect} worker(s) on {path}");
            for _ in 0..expect {
                let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                let write = stream
                    .try_clone()
                    .map_err(|e| format!("clone socket: {e}"))?;
                broker.attach(stream, write);
            }
        }
        None => {
            for _ in 0..args.workers.max(1) {
                children.push(spawn_worker(&broker, &[])?);
            }
        }
    }
    let mut request = JobRequest::new(args.spec.clone());
    if let Some(path) = args.journal {
        request = JobRequest::new(args.spec.clone()).with_journal(path);
    }
    let run = broker.submit(request).wait().map_err(|e| e.to_string())?;
    broker.shutdown();
    reap(children);
    println!(
        "sweep complete: {} resumed, {} executed, {} quarantined, {} lease loss(es)",
        run.run.resumed_cells,
        run.run.executed_cells,
        run.run.quarantined.len(),
        run.lease_losses
    );
    for (w, row) in run.run.matrix.iter().enumerate() {
        for (s, cell) in row.iter().enumerate() {
            match cell {
                Some(report) => println!(
                    "  {:<12} {:<11} cpi {:.4}",
                    args.spec.workloads[w],
                    args.spec.strategies[s],
                    report.report.cpi()
                ),
                None => println!(
                    "  {:<12} {:<11} QUARANTINED",
                    args.spec.workloads[w], args.spec.strategies[s]
                ),
            }
        }
    }
    for failure in &run.run.quarantined {
        eprintln!("  quarantined: {failure}");
    }
    if run.run.quarantined.is_empty() {
        Ok(())
    } else {
        Err("sweep finished with quarantined cells".to_string())
    }
}

fn main() -> ExitCode {
    match parse_serve_args() {
        Ok(None) => match smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shard-broker --smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Some(args)) => match serve(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shard-broker: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("shard-broker: {e}");
            ExitCode::FAILURE
        }
    }
}
