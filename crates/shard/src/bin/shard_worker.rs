//! `shard-worker`: serve sweep-cell leases to a broker.
//!
//! Transport is child stdio by default (the broker spawns workers and
//! owns their pipes) or a Unix socket with `--socket PATH` (the worker
//! connects to a listening broker).
//!
//! ```text
//! shard-worker [--socket PATH] [--region-workers N]
//!              [--abandon-after N]
//!              [--fault-seed S --fault-every P --fault-strikes K]
//! ```
//!
//! `--abandon-after N` makes the worker drop its connection without
//! replying once `N` leases have been served — the harness's
//! kill-a-worker knob. The `--fault-*` flags arm a deterministic
//! injected-fault plan consulted purely per `(cell, attempt)`;
//! identical flags give identical quarantine decisions on any worker.

use delorean_shard::{worker_loop, WorkerOptions};
use delorean_trace::fault::{FaultKind, FaultPlan, FaultSite};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

fn parse_args() -> Result<(WorkerOptions, Option<String>), String> {
    let mut opts = WorkerOptions::default();
    let mut socket = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_every: u64 = 1;
    let mut fault_strikes: u32 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--region-workers" => {
                opts.region_workers = Some(
                    value("--region-workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--region-workers: {e}"))?,
                )
            }
            "--abandon-after" => {
                opts.abandon_after = Some(
                    value("--abandon-after")?
                        .parse::<u64>()
                        .map_err(|e| format!("--abandon-after: {e}"))?,
                )
            }
            "--fault-seed" => {
                fault_seed = Some(
                    value("--fault-seed")?
                        .parse::<u64>()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--fault-every" => {
                fault_every = value("--fault-every")?
                    .parse::<u64>()
                    .map_err(|e| format!("--fault-every: {e}"))?
            }
            "--fault-strikes" => {
                fault_strikes = value("--fault-strikes")?
                    .parse::<u32>()
                    .map_err(|e| format!("--fault-strikes: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(seed) = fault_seed {
        opts.fault = Some(
            FaultPlan::new(seed)
                .at(FaultSite::UnitEntry)
                .every(fault_every)
                .strikes(fault_strikes)
                .kinds(&[FaultKind::Panic]),
        );
    }
    Ok((opts, socket))
}

fn main() -> ExitCode {
    let (opts, socket) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("shard-worker: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match socket {
        Some(path) => {
            let stream = match UnixStream::connect(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("shard-worker: connect {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let write = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("shard-worker: clone socket: {e}");
                    return ExitCode::FAILURE;
                }
            };
            worker_loop(stream, write, &opts)
        }
        None => worker_loop(std::io::stdin(), std::io::stdout(), &opts),
    };
    match outcome {
        Ok(summary) => {
            eprintln!(
                "shard-worker: served {} lease(s), {} failure(s){}",
                summary.leases_served,
                summary.failures,
                if summary.abandoned { ", abandoned" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shard-worker: wire error: {e}");
            ExitCode::FAILURE
        }
    }
}
