//! Little-endian byte codec shared by the wire protocol and the sweep
//! spec.
//!
//! Same conventions as the bench journal's cell codec: every `f64`
//! travels as its IEEE-754 bit pattern (decoded values are `==` the
//! encoded ones, bit for bit), strings are length-prefixed UTF-8, and
//! the reader is bounds-checked — a truncated or padded payload decodes
//! to `None`, never a panic.

use delorean_cpu::DetailedResult;
use delorean_sampling::{RegionReport, RegionUnit};

pub(crate) fn push_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_f64(out: &mut Vec<u8>, v: f64) {
    // Bit-exact: NaN payloads, signed zeros and subnormals all survive.
    push_u64(out, v.to_bits());
}

pub(crate) fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    push_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Encode a span of [`RegionUnit`]s for a `SpanDone` payload.
pub fn encode_units(units: &[RegionUnit]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, units.len() as u32);
    for u in units {
        push_u32(&mut out, u.report.region);
        push_detailed(&mut out, &u.report.detailed);
        push_f64(&mut out, u.seconds);
        push_u64(&mut out, u.collected);
    }
    out
}

/// Decode a `SpanDone` unit payload. `None` on any structural damage.
pub fn decode_units(bytes: &[u8]) -> Option<Vec<RegionUnit>> {
    let mut r = Take { bytes, at: 0 };
    let n = r.u32()? as usize;
    let mut units = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let region = r.u32()?;
        let detailed = r.detailed()?;
        let seconds = r.f64()?;
        let collected = r.u64()?;
        units.push(RegionUnit {
            report: RegionReport { region, detailed },
            seconds,
            collected,
        });
    }
    if r.at != bytes.len() {
        return None;
    }
    Some(units)
}

fn push_detailed(out: &mut Vec<u8>, d: &DetailedResult) {
    push_u64(out, d.instructions);
    push_f64(out, d.cycles);
    push_u64(out, d.mem_accesses);
    for c in d.level_counts {
        push_u64(out, c);
    }
    push_u64(out, d.branches);
    push_u64(out, d.mispredicts);
}

/// Bounds-checked little-endian reader over a payload slice.
pub(crate) struct Take<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) at: usize,
}

impl Take<'_> {
    pub(crate) fn chunk(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let c = &self.bytes[self.at..end];
        self.at = end;
        Some(c)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let c = self.chunk(1)?;
        Some(c[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let c = self.chunk(4)?;
        Some(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let c = self.chunk(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        Some(u64::from_le_bytes(b))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    pub(crate) fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let c = self.chunk(len)?;
        String::from_utf8(c.to_vec()).ok()
    }

    pub(crate) fn byte_block(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        Some(self.chunk(len)?.to_vec())
    }

    pub(crate) fn detailed(&mut self) -> Option<DetailedResult> {
        let instructions = self.u64()?;
        let cycles = self.f64()?;
        let mem_accesses = self.u64()?;
        let mut level_counts = [0u64; 4];
        for c in &mut level_counts {
            *c = self.u64()?;
        }
        let branches = self.u64()?;
        let mispredicts = self.u64()?;
        Some(DetailedResult {
            instructions,
            cycles,
            mem_accesses,
            level_counts,
            branches,
            mispredicts,
        })
    }

    pub(crate) fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}
