//! The broker↔worker wire protocol: length-prefixed, checksummed
//! frames over any byte stream.
//!
//! Framing reuses the run journal's entry idiom
//! ([`delorean_trace::journal`]):
//!
//! ```text
//! frame := len u32, kind u32, checksum u64 (over payload), payload
//! ```
//!
//! so a frame on the wire and an entry on disk corrupt — and recover —
//! the same way. Every defect a hostile or dying peer can produce
//! (truncation mid-frame, a flipped bit, an oversized length, an
//! unknown kind, a payload that does not parse) surfaces as a typed
//! [`WireError`], never a panic; a clean EOF *between* frames decodes
//! as `None` (the peer hung up).
//!
//! Transports are anything `Read`/`Write`: worker child stdio, a Unix
//! socket, or an in-process pipe pair in tests.

use crate::codec::{push_bytes, push_str, push_u32, push_u8, Take};
use delorean_trace::tile::tile_checksum;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried by [`Message::Hello`].
pub const WIRE_VERSION: u32 = 1;
/// Fixed frame-header size: len + kind + payload checksum.
pub const FRAME_HEADER_BYTES: usize = 16;
/// Upper bound on a frame payload; larger lengths are corruption.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const MSG_HELLO: u32 = 1;
const MSG_JOB: u32 = 2;
const MSG_LEASE: u32 = 3;
const MSG_CELL_DONE: u32 = 4;
const MSG_SPAN_DONE: u32 = 5;
const MSG_CELL_FAILED: u32 = 6;
const MSG_SHUTDOWN: u32 = 7;

/// What went wrong reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame header declares a payload beyond [`MAX_FRAME_BYTES`].
    Oversize {
        /// Declared payload length.
        len: u32,
    },
    /// The payload does not match its header checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The frame kind is not part of this protocol version.
    UnknownKind {
        /// The kind actually found.
        kind: u32,
    },
    /// The payload checksummed clean but does not parse as its kind.
    Malformed {
        /// Frame kind whose payload failed to decode.
        kind: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Truncated { needed, got } => {
                write!(f, "frame truncated: needed {needed} bytes, got {got}")
            }
            WireError::Oversize { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_BYTES}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            WireError::Malformed { kind } => {
                write!(f, "frame of kind {kind} has a malformed payload")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A typed unit fault on the wire (mirrors
/// [`delorean_trace::fault::UnitFault`], which is not serializable
/// itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Fault discriminant: 0 panic, 1 trace error, 2 timeout, 3 chain
    /// poisoned.
    pub kind: u32,
    /// Kind-specific auxiliary value (the poisoning upstream unit for
    /// kind 3, otherwise 0).
    pub aux: u32,
    /// Human-readable detail (panic message / trace-error display).
    pub detail: String,
}

impl WireFault {
    /// Encode a classified unit fault for the wire.
    pub fn from_unit_fault(fault: &delorean_trace::fault::UnitFault) -> WireFault {
        use delorean_trace::fault::UnitFault;
        match fault {
            UnitFault::Panicked { message } => WireFault {
                kind: 0,
                aux: 0,
                detail: message.clone(),
            },
            UnitFault::TraceError(e) => WireFault {
                kind: 1,
                aux: 0,
                detail: e.to_string(),
            },
            UnitFault::Timeout => WireFault {
                kind: 2,
                aux: 0,
                detail: String::new(),
            },
            UnitFault::ChainPoisoned { upstream } => WireFault {
                kind: 3,
                aux: *upstream,
                detail: String::new(),
            },
        }
    }

    /// Decode back into the trace-layer fault vocabulary. Trace errors
    /// lose their structure (only the display string travels); they
    /// come back as `DecoderFailed` carrying that string.
    pub fn to_unit_fault(&self) -> delorean_trace::fault::UnitFault {
        use delorean_trace::fault::UnitFault;
        match self.kind {
            1 => UnitFault::TraceError(delorean_trace::TileError::DecoderFailed {
                detail: self.detail.clone(),
            }),
            2 => UnitFault::Timeout,
            3 => UnitFault::ChainPoisoned { upstream: self.aux },
            _ => UnitFault::Panicked {
                message: self.detail.clone(),
            },
        }
    }
}

/// One protocol message.
///
/// Result payloads (`report` in `CellDone`, `units` in `SpanDone`)
/// travel as opaque byte blocks: a `CellDone` report is *exactly* the
/// bench journal's [`encode_cell`](delorean_bench::journal::encode_cell)
/// bytes, so the broker journals it verbatim and a shard journal is
/// mutually resumable with an in-process
/// [`run_matrix_journaled`](delorean_bench::BatchExecutor::run_matrix_journaled)
/// one.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Worker greeting with its protocol version.
    Hello {
        /// The worker's [`WIRE_VERSION`].
        version: u32,
    },
    /// Broker announces a job's sweep configuration.
    Job {
        /// Broker-assigned job id.
        job: u32,
        /// Serialized [`SweepSpec`](crate::SweepSpec).
        spec: Vec<u8>,
    },
    /// Broker leases one work item to this worker.
    Lease {
        /// Job the cell belongs to.
        job: u32,
        /// Flat cell index (`w * strategies + s`).
        cell: u32,
        /// Cell-level attempt number (drives deterministic
        /// fault-injection decisions worker-side).
        attempt: u32,
        /// `Some(lo..hi)` region span for decomposed cells; `None`
        /// leases the whole cell.
        span: Option<(u32, u32)>,
    },
    /// Worker completed a whole cell.
    CellDone {
        /// Job the cell belongs to.
        job: u32,
        /// Flat cell index.
        cell: u32,
        /// Attempt number echoed from the lease.
        attempt: u32,
        /// Journal-codec cell bytes (`encode_cell(cell, report)`).
        report: Vec<u8>,
    },
    /// Worker completed a region span of a decomposed cell.
    SpanDone {
        /// Job the cell belongs to.
        job: u32,
        /// Flat cell index.
        cell: u32,
        /// Attempt number echoed from the lease.
        attempt: u32,
        /// First region index of the span.
        lo: u32,
        /// One past the last region index.
        hi: u32,
        /// [`encode_units`](crate::codec::encode_units) bytes.
        units: Vec<u8>,
    },
    /// Worker's leased item failed (guarded, classified).
    CellFailed {
        /// Job the cell belongs to.
        job: u32,
        /// Flat cell index.
        cell: u32,
        /// Attempt number echoed from the lease.
        attempt: u32,
        /// The classified fault.
        fault: WireFault,
    },
    /// Broker tells the worker to exit cleanly.
    Shutdown,
}

impl Message {
    fn encode(&self) -> (u32, Vec<u8>) {
        let mut p = Vec::new();
        match self {
            Message::Hello { version } => {
                push_u32(&mut p, *version);
                (MSG_HELLO, p)
            }
            Message::Job { job, spec } => {
                push_u32(&mut p, *job);
                push_bytes(&mut p, spec);
                (MSG_JOB, p)
            }
            Message::Lease {
                job,
                cell,
                attempt,
                span,
            } => {
                push_u32(&mut p, *job);
                push_u32(&mut p, *cell);
                push_u32(&mut p, *attempt);
                match span {
                    Some((lo, hi)) => {
                        push_u8(&mut p, 1);
                        push_u32(&mut p, *lo);
                        push_u32(&mut p, *hi);
                    }
                    None => push_u8(&mut p, 0),
                }
                (MSG_LEASE, p)
            }
            Message::CellDone {
                job,
                cell,
                attempt,
                report,
            } => {
                push_u32(&mut p, *job);
                push_u32(&mut p, *cell);
                push_u32(&mut p, *attempt);
                push_bytes(&mut p, report);
                (MSG_CELL_DONE, p)
            }
            Message::SpanDone {
                job,
                cell,
                attempt,
                lo,
                hi,
                units,
            } => {
                push_u32(&mut p, *job);
                push_u32(&mut p, *cell);
                push_u32(&mut p, *attempt);
                push_u32(&mut p, *lo);
                push_u32(&mut p, *hi);
                push_bytes(&mut p, units);
                (MSG_SPAN_DONE, p)
            }
            Message::CellFailed {
                job,
                cell,
                attempt,
                fault,
            } => {
                push_u32(&mut p, *job);
                push_u32(&mut p, *cell);
                push_u32(&mut p, *attempt);
                push_u32(&mut p, fault.kind);
                push_u32(&mut p, fault.aux);
                push_str(&mut p, &fault.detail);
                (MSG_CELL_FAILED, p)
            }
            Message::Shutdown => (MSG_SHUTDOWN, p),
        }
    }

    fn decode(kind: u32, payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Take {
            bytes: payload,
            at: 0,
        };
        let msg = match kind {
            MSG_HELLO => r.u32().map(|version| Message::Hello { version }),
            MSG_JOB => (|| {
                Some(Message::Job {
                    job: r.u32()?,
                    spec: r.byte_block()?,
                })
            })(),
            MSG_LEASE => (|| {
                let job = r.u32()?;
                let cell = r.u32()?;
                let attempt = r.u32()?;
                let span = match r.u8()? {
                    0 => None,
                    1 => Some((r.u32()?, r.u32()?)),
                    _ => return None,
                };
                Some(Message::Lease {
                    job,
                    cell,
                    attempt,
                    span,
                })
            })(),
            MSG_CELL_DONE => (|| {
                Some(Message::CellDone {
                    job: r.u32()?,
                    cell: r.u32()?,
                    attempt: r.u32()?,
                    report: r.byte_block()?,
                })
            })(),
            MSG_SPAN_DONE => (|| {
                Some(Message::SpanDone {
                    job: r.u32()?,
                    cell: r.u32()?,
                    attempt: r.u32()?,
                    lo: r.u32()?,
                    hi: r.u32()?,
                    units: r.byte_block()?,
                })
            })(),
            MSG_CELL_FAILED => (|| {
                Some(Message::CellFailed {
                    job: r.u32()?,
                    cell: r.u32()?,
                    attempt: r.u32()?,
                    fault: WireFault {
                        kind: r.u32()?,
                        aux: r.u32()?,
                        detail: r.string()?,
                    },
                })
            })(),
            MSG_SHUTDOWN => Some(Message::Shutdown),
            _ => return Err(WireError::UnknownKind { kind }),
        };
        match msg {
            Some(m) if r.done() => Ok(m),
            _ => Err(WireError::Malformed { kind }),
        }
    }
}

/// Write one raw frame.
pub fn write_frame(w: &mut dyn Write, kind: u32, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversize {
            len: payload.len() as u32,
        });
    }
    let mut head = [0u8; FRAME_HEADER_BYTES];
    head[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..8].copy_from_slice(&kind.to_le_bytes());
    head[8..16].copy_from_slice(&tile_checksum(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one raw frame. `Ok(None)` is a clean EOF at a frame boundary;
/// an EOF *inside* a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut dyn Read) -> Result<Option<(u32, Vec<u8>)>, WireError> {
    let mut head = [0u8; FRAME_HEADER_BYTES];
    let mut at = 0usize;
    while at < FRAME_HEADER_BYTES {
        let n = r.read(&mut head[at..])?;
        if n == 0 {
            if at == 0 {
                return Ok(None);
            }
            return Err(WireError::Truncated {
                needed: FRAME_HEADER_BYTES,
                got: at,
            });
        }
        at += n;
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let kind = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&head[8..16]);
    let stored = u64::from_le_bytes(sum);
    if len as usize > MAX_FRAME_BYTES {
        return Err(WireError::Oversize { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut at = 0usize;
    while at < payload.len() {
        let n = r.read(&mut payload[at..])?;
        if n == 0 {
            return Err(WireError::Truncated {
                needed: payload.len(),
                got: at,
            });
        }
        at += n;
    }
    let computed = tile_checksum(&payload);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok(Some((kind, payload)))
}

/// Send one message.
pub fn send(w: &mut dyn Write, msg: &Message) -> Result<(), WireError> {
    let (kind, payload) = msg.encode();
    write_frame(w, kind, &payload)
}

/// Receive one message. `Ok(None)` is a clean hang-up.
pub fn recv(r: &mut dyn Read) -> Result<Option<Message>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((kind, payload)) => Message::decode(kind, &payload).map(Some),
    }
}
