//! The shard broker: leases sweep cells to attached workers and
//! reduces their results into a [`MatrixRun`].
//!
//! One scheduler thread owns all state; per-worker reader threads only
//! forward decoded frames (or a hang-up) into its event channel, so
//! there is no shared mutable state to lock. The scheduler wakes on
//! events or on a fixed tick ([`BrokerConfig::lease_tick`]) to age
//! outstanding leases — deadlines are counted in ticks, never read
//! from a wall clock, so the broker obeys the workspace's no-wallclock
//! discipline.
//!
//! # Determinism
//!
//! Scheduling is never semantics. Whatever the worker count, kill
//! pattern, or delivery order:
//!
//! * results land in **cell-indexed slots** and are assembled in plan
//!   order, exactly like the in-process executor;
//! * duplicate deliveries dedup on the slot (first result wins; both
//!   are bitwise identical anyway, being pure functions of the cell);
//! * failure retries are counted **per cell** (`attempt` rides the
//!   lease so worker-side injected faults are pure in
//!   `(cell, attempt)`), making the quarantined set independent of
//!   scheduling;
//! * worker deaths and lease expiries are *lease losses*, tracked
//!   separately from failures — a lost lease re-leases at the same
//!   attempt number and cannot perturb the quarantine decision.
//!
//! Completed cells are journaled verbatim
//! ([`delorean_bench::journal::encode_cell`] bytes under the same tag
//! the in-process executor uses), so broker restarts resume from the
//! journal's valid prefix — in either direction between a shard run
//! and [`run_matrix_journaled`](delorean_bench::BatchExecutor::run_matrix_journaled).

use crate::codec::decode_units;
use crate::spec::strategy_decomposes;
use crate::wire::{self, Message, WireError, WireFault, WIRE_VERSION};
use crate::{ShardError, SweepSpec};
use delorean_bench::journal::{decode_cell, encode_cell, CELL_ENTRY_KIND};
use delorean_bench::MatrixRun;
use delorean_sampling::{
    reduce_region_units, FaultPolicy, RegionPlan, RegionUnit, StrategyReport, UnitFailure,
    UnitFault,
};
use delorean_trace::JournalWriter;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Broker tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct BrokerConfig {
    /// Per-cell deterministic-failure retry discipline: a cell whose
    /// attempts reach [`FaultPolicy::max_attempts`] is quarantined.
    pub policy: FaultPolicy,
    /// Lease re-issues a cell survives from worker deaths or expiries
    /// before being quarantined as timed out. Losses are scheduling,
    /// not determinism, so this budget is generous by default.
    pub lease_loss_budget: u32,
    /// Scheduler wake-up period for lease aging.
    pub lease_tick: Duration,
    /// Ticks an outstanding lease lives before expiring.
    pub lease_ticks: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            policy: FaultPolicy::default(),
            lease_loss_budget: 16,
            lease_tick: Duration::from_millis(250),
            lease_ticks: 240,
        }
    }
}

/// One job submission: the sweep, plus durability and halting knobs.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The sweep to run.
    pub spec: SweepSpec,
    /// Journal path: created fresh, or **resumed** if the file exists
    /// (its valid prefix restores completed cells verbatim).
    pub journal: Option<PathBuf>,
    /// Halt after this many newly-executed cell completions — the
    /// broker stops leasing, drains in-flight work, and returns a
    /// partial [`ShardRun`] with [`halted`](ShardRun::halted) set.
    /// Together with `journal`, this simulates a broker kill: a fresh
    /// broker resuming the same journal finishes the sweep.
    pub cell_budget: Option<usize>,
}

impl JobRequest {
    /// A plain run-to-completion request.
    pub fn new(spec: SweepSpec) -> JobRequest {
        JobRequest {
            spec,
            journal: None,
            cell_budget: None,
        }
    }

    /// Journal completed cells to (or resume from) `path`.
    pub fn with_journal(mut self, path: PathBuf) -> JobRequest {
        self.journal = Some(path);
        self
    }

    /// Halt after `n` newly-executed completions.
    pub fn with_cell_budget(mut self, n: usize) -> JobRequest {
        self.cell_budget = Some(n);
        self
    }
}

/// The outcome of one shard job.
#[derive(Debug)]
pub struct ShardRun {
    /// The matrix, bit-compatible with the in-process executor's
    /// [`MatrixRun`] (quarantined cells are `None` slots with typed
    /// failures in cell order).
    pub run: MatrixRun,
    /// `true` if a [`cell_budget`](JobRequest::cell_budget) halted the
    /// job before completion.
    pub halted: bool,
    /// Leases lost to worker deaths or deadline expiries (scheduling
    /// noise — never affects result bytes or the quarantined set).
    pub lease_losses: usize,
}

/// Handle to a submitted job.
#[derive(Debug)]
pub struct JobTicket {
    rx: Receiver<Result<ShardRun, ShardError>>,
}

impl JobTicket {
    /// Block until the job finishes (or the broker shuts down).
    pub fn wait(self) -> Result<ShardRun, ShardError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ShardError::BrokerClosed),
        }
    }
}

/// The shard broker: accepts jobs from any number of clients, leases
/// cells to attached workers, reduces plan-ordered matrices.
#[derive(Debug)]
pub struct Broker {
    tx: Sender<Event>,
    thread: Option<JoinHandle<()>>,
}

impl Broker {
    /// Start a broker with its scheduler thread.
    pub fn new(config: BrokerConfig) -> Broker {
        let (tx, rx) = channel();
        let scheduler_tx = tx.clone();
        let thread = std::thread::spawn(move || Scheduler::new(config, scheduler_tx, rx).run());
        Broker {
            tx,
            thread: Some(thread),
        }
    }

    /// Attach a worker over a byte-stream transport (child stdio, a
    /// Unix socket, an in-process pipe pair).
    pub fn attach(&self, read: impl Read + Send + 'static, write: impl Write + Send + 'static) {
        let _ = self.tx.send(Event::Attach(Box::new(read), Box::new(write)));
    }

    /// Submit a job; returns immediately with a ticket. Any number of
    /// clients may submit concurrently — jobs share the worker pool.
    pub fn submit(&self, request: JobRequest) -> JobTicket {
        let (reply, rx) = channel();
        let _ = self.tx.send(Event::Submit(Box::new(request), reply));
        JobTicket { rx }
    }

    /// Submit and wait: the shard-side equivalent of
    /// [`BatchExecutor::run_matrix`](delorean_bench::BatchExecutor::run_matrix).
    pub fn run_matrix(&self, spec: SweepSpec) -> Result<ShardRun, ShardError> {
        self.submit(JobRequest::new(spec)).wait()
    }

    /// Shut down: workers get a `Shutdown` frame, unfinished tickets
    /// resolve to [`ShardError::BrokerClosed`].
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let _ = self.tx.send(Event::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.finish();
    }
}

enum Event {
    Attach(Box<dyn Read + Send>, Box<dyn Write + Send>),
    Submit(Box<JobRequest>, Sender<Result<ShardRun, ShardError>>),
    FromWorker(usize, Message),
    WorkerGone(usize),
    Shutdown,
}

/// A leased work item: a whole cell, or one region-span part of a
/// decomposed cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct WorkItem {
    cell: u32,
    part: Option<u32>,
}

struct LeaseSlot {
    job: u32,
    item: WorkItem,
}

struct WorkerSlot {
    writer: Option<Box<dyn Write + Send>>,
    announced: Vec<u32>,
    lease: Option<LeaseSlot>,
    ticks_left: u32,
}

struct SpanParts {
    bounds: Vec<(u32, u32)>,
    units: Vec<Option<Vec<RegionUnit>>>,
}

struct CellState {
    fail_attempts: u32,
    lease_losses: u32,
    quarantined: Option<UnitFailure>,
    parts: Option<SpanParts>,
}

struct JobState {
    spec: SweepSpec,
    spec_bytes: Vec<u8>,
    plan: RegionPlan,
    slots: Vec<Option<StrategyReport>>,
    cells: Vec<CellState>,
    pending: VecDeque<WorkItem>,
    outstanding: usize,
    journal: Option<JournalWriter>,
    journal_faults: usize,
    resumed_cells: usize,
    executed_cells: usize,
    completions: usize,
    budget: Option<usize>,
    halted: bool,
    lease_losses: usize,
    reply: Option<Sender<Result<ShardRun, ShardError>>>,
}

struct Scheduler {
    config: BrokerConfig,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    workers: Vec<WorkerSlot>,
    jobs: Vec<JobState>,
}

impl Scheduler {
    fn new(config: BrokerConfig, tx: Sender<Event>, rx: Receiver<Event>) -> Scheduler {
        Scheduler {
            config,
            tx,
            rx,
            workers: Vec::new(),
            jobs: Vec::new(),
        }
    }

    fn run(mut self) {
        loop {
            match self.rx.recv_timeout(self.config.lease_tick) {
                Ok(Event::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(event) => self.handle(event),
                Err(RecvTimeoutError::Timeout) => self.tick(),
            }
            self.dispatch();
        }
        for slot in &mut self.workers {
            if let Some(mut writer) = slot.writer.take() {
                let _ = wire::send(&mut *writer, &Message::Shutdown);
            }
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Attach(read, write) => self.attach(read, write),
            Event::Submit(request, reply) => self.submit(*request, reply),
            Event::FromWorker(idx, msg) => self.worker_message(idx, msg),
            Event::WorkerGone(idx) => self.worker_gone(idx),
            Event::Shutdown => {}
        }
    }

    fn attach(&mut self, read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) {
        let idx = self.workers.len();
        self.workers.push(WorkerSlot {
            writer: Some(write),
            announced: Vec::new(),
            lease: None,
            ticks_left: 0,
        });
        let tx = self.tx.clone();
        std::thread::spawn(move || read_loop(idx, read, tx));
    }

    fn submit(&mut self, request: JobRequest, reply: Sender<Result<ShardRun, ShardError>>) {
        let spec = request.spec;
        if let Err(e) = spec.validate() {
            let _ = reply.send(Err(e));
            return;
        }
        let plan = spec.plan();
        let n_cells = spec.n_cells();
        let mut slots: Vec<Option<StrategyReport>> = (0..n_cells).map(|_| None).collect();
        let mut resumed_cells = 0usize;
        let journal = match request.journal {
            Some(path) => {
                let tag = spec.tag(&plan);
                let opened = if path.exists() {
                    JournalWriter::resume(&path, tag).map(|(writer, prefix)| {
                        for entry in prefix {
                            if entry.kind != CELL_ENTRY_KIND {
                                continue;
                            }
                            if let Some((cell, report)) = decode_cell(&entry.payload) {
                                if let Some(slot) = slots.get_mut(cell as usize) {
                                    if slot.is_none() {
                                        resumed_cells += 1;
                                    }
                                    *slot = Some(StrategyReport::new(report));
                                }
                            }
                        }
                        writer
                    })
                } else {
                    JournalWriter::create(&path, tag)
                };
                match opened {
                    Ok(writer) => Some(writer),
                    Err(e) => {
                        let _ = reply.send(Err(ShardError::Journal(e)));
                        return;
                    }
                }
            }
            None => None,
        };
        let mut cells = Vec::with_capacity(n_cells);
        let mut pending = VecDeque::new();
        for cell in 0..n_cells as u32 {
            let open = slots[cell as usize].is_none();
            let parts = match spec.split_regions {
                Some(k) if open && strategy_decomposes(spec.strategy_name(cell)) => {
                    let k = k.max(1) as usize;
                    let n = plan.regions.len();
                    let bounds: Vec<(u32, u32)> = (0..n)
                        .step_by(k)
                        .map(|lo| (lo as u32, (lo + k).min(n) as u32))
                        .collect();
                    Some(SpanParts {
                        units: vec![None; bounds.len()],
                        bounds,
                    })
                }
                _ => None,
            };
            if open {
                match &parts {
                    Some(p) => {
                        for part in 0..p.bounds.len() as u32 {
                            pending.push_back(WorkItem {
                                cell,
                                part: Some(part),
                            });
                        }
                    }
                    None => pending.push_back(WorkItem { cell, part: None }),
                }
            }
            cells.push(CellState {
                fail_attempts: 0,
                lease_losses: 0,
                quarantined: None,
                parts,
            });
        }
        let job_idx = self.jobs.len();
        self.jobs.push(JobState {
            spec_bytes: spec.encode(),
            spec,
            plan,
            slots,
            cells,
            pending,
            outstanding: 0,
            journal,
            journal_faults: 0,
            resumed_cells,
            executed_cells: 0,
            completions: 0,
            budget: request.cell_budget,
            halted: false,
            lease_losses: 0,
            reply: Some(reply),
        });
        // A resumed journal may already cover the whole matrix.
        self.try_finish(job_idx);
    }

    fn worker_message(&mut self, idx: usize, msg: Message) {
        match msg {
            Message::Hello { version } => {
                if version != WIRE_VERSION {
                    self.worker_gone(idx);
                }
            }
            Message::CellDone {
                job, cell, report, ..
            } => self.cell_done(idx, job, cell, report),
            Message::SpanDone {
                job,
                cell,
                lo,
                hi,
                units,
                ..
            } => self.span_done(idx, job, cell, lo, hi, units),
            Message::CellFailed {
                job, cell, fault, ..
            } => self.cell_failed(idx, job, cell, fault),
            // Broker-role messages from a confused peer are ignored.
            Message::Job { .. } | Message::Lease { .. } | Message::Shutdown => {}
        }
    }

    /// Clear `idx`'s lease if it matches `(job, cell)`; returns the
    /// leased item for requeueing. `None` means the delivery is stale
    /// (duplicate, or the lease already expired/re-leased elsewhere).
    fn take_lease(&mut self, idx: usize, job: u32, cell: u32) -> Option<WorkItem> {
        let slot = self.workers.get_mut(idx)?;
        let matches = slot
            .lease
            .as_ref()
            .is_some_and(|l| l.job == job && l.item.cell == cell);
        if !matches {
            return None;
        }
        let lease = slot.lease.take()?;
        if let Some(j) = self.jobs.get_mut(lease.job as usize) {
            j.outstanding = j.outstanding.saturating_sub(1);
        }
        Some(lease.item)
    }

    fn cell_done(&mut self, idx: usize, job: u32, cell: u32, report_bytes: Vec<u8>) {
        let item = self.take_lease(idx, job, cell);
        let job_idx = job as usize;
        let accepted = {
            let Some(j) = self.jobs.get_mut(job_idx) else {
                return;
            };
            if j.reply.is_none() {
                return;
            }
            let Some(slot) = j.slots.get(cell as usize) else {
                return;
            };
            if slot.is_some() || j.cells[cell as usize].quarantined.is_some() {
                // Duplicate delivery or post-quarantine straggler: the
                // first result (or the quarantine decision) stands.
                return;
            }
            match decode_cell(&report_bytes) {
                Some((c, report)) if c == cell => {
                    j.slots[cell as usize] = Some(StrategyReport::new(report));
                    j.executed_cells += 1;
                    j.completions += 1;
                    if let Some(writer) = j.journal.as_mut() {
                        // The wire payload IS the journal payload:
                        // append it verbatim, bit for bit.
                        if writer.append(CELL_ENTRY_KIND, &report_bytes).is_err() {
                            j.journal_faults += 1;
                        }
                    }
                    true
                }
                _ => false,
            }
        };
        if accepted {
            self.check_halt(job_idx);
            self.try_finish(job_idx);
        } else if let Some(item) = item {
            // A result that checksummed clean on the wire but does not
            // decode as this cell is a worker defect: count it as a
            // failed attempt so a persistent offender quarantines.
            self.fail_item(
                job,
                item,
                WireFault {
                    kind: 0,
                    aux: 0,
                    detail: format!("cell {cell} returned an undecodable report"),
                },
            );
        }
    }

    fn span_done(&mut self, idx: usize, job: u32, cell: u32, lo: u32, hi: u32, units: Vec<u8>) {
        let item = self.take_lease(idx, job, cell);
        let job_idx = job as usize;
        enum SpanOutcome {
            Stored,
            Completed,
            Bad,
            Stale,
        }
        let outcome = {
            let Some(j) = self.jobs.get_mut(job_idx) else {
                return;
            };
            if j.reply.is_none() {
                return;
            }
            let stale = j
                .slots
                .get(cell as usize)
                .map(|s| s.is_some())
                .unwrap_or(true)
                || j.cells[cell as usize].quarantined.is_some();
            if stale {
                SpanOutcome::Stale
            } else {
                let decoded =
                    decode_units(&units).filter(|u| u.len() == (hi.saturating_sub(lo)) as usize);
                let parts = j.cells[cell as usize].parts.as_mut();
                match (parts, decoded) {
                    (Some(parts), Some(decoded)) => {
                        match parts.bounds.iter().position(|&(l, h)| l == lo && h == hi) {
                            Some(p) if parts.units[p].is_none() => {
                                parts.units[p] = Some(decoded);
                                if parts.units.iter().all(Option::is_some) {
                                    // All spans landed: fold in plan
                                    // order, exactly like the
                                    // in-process reduce.
                                    let mut all = Vec::with_capacity(j.plan.regions.len());
                                    for u in &mut parts.units {
                                        if let Some(span_units) = u.take() {
                                            for unit in span_units {
                                                all.push(Some(unit));
                                            }
                                        }
                                    }
                                    let report = reduce_region_units(
                                        j.spec.workload_name(cell),
                                        &j.plan,
                                        j.spec.strategy_name(cell),
                                        all,
                                    );
                                    let bytes = encode_cell(cell, &report);
                                    j.slots[cell as usize] = Some(StrategyReport::new(report));
                                    j.executed_cells += 1;
                                    j.completions += 1;
                                    if let Some(writer) = j.journal.as_mut() {
                                        if writer.append(CELL_ENTRY_KIND, &bytes).is_err() {
                                            j.journal_faults += 1;
                                        }
                                    }
                                    SpanOutcome::Completed
                                } else {
                                    SpanOutcome::Stored
                                }
                            }
                            // Duplicate span delivery: first wins.
                            Some(_) => SpanOutcome::Stale,
                            None => SpanOutcome::Bad,
                        }
                    }
                    _ => SpanOutcome::Bad,
                }
            }
        };
        match outcome {
            SpanOutcome::Completed => {
                self.check_halt(job_idx);
                self.try_finish(job_idx);
            }
            SpanOutcome::Stored | SpanOutcome::Stale => {}
            SpanOutcome::Bad => {
                if let Some(item) = item {
                    self.fail_item(
                        job,
                        item,
                        WireFault {
                            kind: 0,
                            aux: 0,
                            detail: format!("cell {cell} span {lo}..{hi} returned bad units"),
                        },
                    );
                }
            }
        }
    }

    fn cell_failed(&mut self, idx: usize, job: u32, cell: u32, fault: WireFault) {
        // Only a failure matching a live lease advances the attempt
        // counter — stale duplicates must not perturb the
        // deterministic quarantine decision.
        let Some(item) = self.take_lease(idx, job, cell) else {
            return;
        };
        let resolved = {
            let Some(j) = self.jobs.get(job as usize) else {
                return;
            };
            j.reply.is_none()
                || j.slots
                    .get(cell as usize)
                    .map(|s| s.is_some())
                    .unwrap_or(true)
                || j.cells[cell as usize].quarantined.is_some()
        };
        if !resolved {
            self.fail_item(job, item, fault);
        }
    }

    /// Count one failed attempt against `item`'s cell: requeue within
    /// the policy budget, quarantine on exhaustion.
    fn fail_item(&mut self, job: u32, item: WorkItem, fault: WireFault) {
        let max_attempts = self.config.policy.max_attempts();
        let job_idx = job as usize;
        let quarantined = {
            let Some(j) = self.jobs.get_mut(job_idx) else {
                return;
            };
            let Some(cell_state) = j.cells.get_mut(item.cell as usize) else {
                return;
            };
            cell_state.fail_attempts += 1;
            if cell_state.fail_attempts >= max_attempts {
                cell_state.quarantined = Some(UnitFailure {
                    unit: item.cell,
                    attempts: cell_state.fail_attempts,
                    fault: fault.to_unit_fault(),
                });
                // Sibling span parts of a quarantined cell are dead
                // work: drop them from the queue (in-flight ones are
                // ignored on arrival).
                j.pending.retain(|it| it.cell != item.cell);
                true
            } else {
                j.pending.push_back(item);
                false
            }
        };
        if quarantined {
            self.try_finish(job_idx);
        }
    }

    fn worker_gone(&mut self, idx: usize) {
        let Some(slot) = self.workers.get_mut(idx) else {
            return;
        };
        slot.writer = None;
        if let Some(lease) = slot.lease.take() {
            self.lease_lost(lease);
        }
    }

    /// A lease died with its worker (or expired): re-lease the item at
    /// the *same* attempt number, or quarantine past the loss budget.
    fn lease_lost(&mut self, lease: LeaseSlot) {
        let job_idx = lease.job as usize;
        let budget = self.config.lease_loss_budget;
        let quarantined = {
            let Some(j) = self.jobs.get_mut(job_idx) else {
                return;
            };
            j.outstanding = j.outstanding.saturating_sub(1);
            if j.reply.is_none() {
                return;
            }
            j.lease_losses += 1;
            let cell = lease.item.cell as usize;
            let done = j.slots.get(cell).map(|s| s.is_some()).unwrap_or(true)
                || j.cells[cell].quarantined.is_some();
            if done {
                false
            } else {
                let cell_state = &mut j.cells[cell];
                cell_state.lease_losses += 1;
                if cell_state.lease_losses > budget {
                    cell_state.quarantined = Some(UnitFailure {
                        unit: lease.item.cell,
                        attempts: cell_state.fail_attempts,
                        fault: UnitFault::Timeout,
                    });
                    j.pending.retain(|it| it.cell != lease.item.cell);
                    true
                } else {
                    j.pending.push_back(lease.item);
                    false
                }
            }
        };
        // A halted job waiting on in-flight leases may now be
        // drained; a quarantine may complete the matrix.
        let _ = quarantined;
        self.try_finish(job_idx);
    }

    /// Age outstanding leases by one tick; expire the overdue.
    fn tick(&mut self) {
        for idx in 0..self.workers.len() {
            let expired = {
                let slot = &mut self.workers[idx];
                if slot.lease.is_none() {
                    false
                } else if slot.ticks_left == 0 {
                    true
                } else {
                    slot.ticks_left -= 1;
                    false
                }
            };
            if expired {
                // The worker stays attached (it may just be slow —
                // its late result is still pure and acceptable), but
                // the item re-leases elsewhere.
                if let Some(lease) = self.workers[idx].lease.take() {
                    self.lease_lost(lease);
                }
            }
        }
    }

    fn check_halt(&mut self, job_idx: usize) {
        let Some(j) = self.jobs.get_mut(job_idx) else {
            return;
        };
        if let Some(budget) = j.budget {
            if j.completions >= budget {
                j.halted = true;
            }
        }
    }

    fn try_finish(&mut self, job_idx: usize) {
        let ready = {
            let Some(j) = self.jobs.get(job_idx) else {
                return;
            };
            if j.reply.is_none() {
                return;
            }
            let resolved = j
                .slots
                .iter()
                .zip(&j.cells)
                .all(|(slot, cell)| slot.is_some() || cell.quarantined.is_some());
            resolved || (j.halted && j.outstanding == 0)
        };
        if !ready {
            return;
        }
        let Some(j) = self.jobs.get_mut(job_idx) else {
            return;
        };
        let n_strategies = j.spec.strategies.len().max(1);
        let slots = std::mem::take(&mut j.slots);
        let mut quarantined = Vec::new();
        for cell in &mut j.cells {
            if let Some(failure) = cell.quarantined.take() {
                quarantined.push(failure);
            }
        }
        let mut matrix = Vec::with_capacity(j.spec.workloads.len());
        let mut it = slots.into_iter();
        for _ in 0..j.spec.workloads.len() {
            matrix.push(it.by_ref().take(n_strategies).collect());
        }
        // Close the journal before replying so a successor broker can
        // reopen the file immediately.
        j.journal = None;
        j.pending.clear();
        let run = ShardRun {
            run: MatrixRun {
                matrix,
                quarantined,
                resumed_cells: j.resumed_cells,
                executed_cells: j.executed_cells,
                journal_faults: j.journal_faults,
            },
            halted: j.halted,
            lease_losses: j.lease_losses,
        };
        if let Some(reply) = j.reply.take() {
            let _ = reply.send(Ok(run));
        }
    }

    /// Hand pending items to idle workers until one side runs out.
    fn dispatch(&mut self) {
        loop {
            let Some(widx) = self
                .workers
                .iter()
                .position(|w| w.writer.is_some() && w.lease.is_none())
            else {
                return;
            };
            let Some(job_idx) = self
                .jobs
                .iter()
                .position(|j| j.reply.is_some() && !j.halted && !j.pending.is_empty())
            else {
                return;
            };
            let Some(item) = self.jobs[job_idx].pending.pop_front() else {
                continue;
            };
            let job = job_idx as u32;
            let attempt = self.jobs[job_idx]
                .cells
                .get(item.cell as usize)
                .map(|c| c.fail_attempts)
                .unwrap_or(0);
            let span = item.part.and_then(|p| {
                self.jobs[job_idx].cells[item.cell as usize]
                    .parts
                    .as_ref()
                    .and_then(|parts| parts.bounds.get(p as usize).copied())
            });
            let announce = if self.workers[widx].announced.contains(&job) {
                None
            } else {
                Some(Message::Job {
                    job,
                    spec: self.jobs[job_idx].spec_bytes.clone(),
                })
            };
            let mut sent = true;
            if let Some(msg) = announce {
                sent = self.send_to(widx, &msg);
                if sent {
                    self.workers[widx].announced.push(job);
                }
            }
            if sent {
                sent = self.send_to(
                    widx,
                    &Message::Lease {
                        job,
                        cell: item.cell,
                        attempt,
                        span,
                    },
                );
            }
            if sent {
                let slot = &mut self.workers[widx];
                slot.lease = Some(LeaseSlot { job, item });
                slot.ticks_left = self.config.lease_ticks;
                self.jobs[job_idx].outstanding += 1;
            } else {
                // Dead transport: detach the worker, requeue the item
                // at the front (no attempt consumed — the lease never
                // existed).
                self.jobs[job_idx].pending.push_front(item);
                self.workers[widx].writer = None;
            }
        }
    }

    fn send_to(&mut self, idx: usize, msg: &Message) -> bool {
        let Some(slot) = self.workers.get_mut(idx) else {
            return false;
        };
        let Some(writer) = slot.writer.as_mut() else {
            return false;
        };
        wire::send(&mut **writer, msg).is_ok()
    }
}

/// Per-worker reader thread: forwards frames to the scheduler until
/// the stream ends (cleanly or not — either way the worker is gone).
fn read_loop(idx: usize, mut read: Box<dyn Read + Send>, tx: Sender<Event>) {
    loop {
        match wire::recv(&mut *read) {
            Ok(Some(msg)) => {
                if tx.send(Event::FromWorker(idx, msg)).is_err() {
                    return;
                }
            }
            Ok(None) => {
                let _ = tx.send(Event::WorkerGone(idx));
                return;
            }
            Err(WireError::Io(_)) | Err(_) => {
                let _ = tx.send(Event::WorkerGone(idx));
                return;
            }
        }
    }
}
