//! Simulation-as-a-service shard layer: a sweep **broker** that splits
//! strategy×workload jobs into leased work cells, fans them out to
//! **worker processes** over a checksummed wire protocol, and reduces
//! plan-ordered matrices bitwise identical to the in-process
//! [`BatchExecutor`](delorean_bench::BatchExecutor).
//!
//! # Architecture
//!
//! ```text
//! clients ──submit──▶ ┌────────┐ ──lease──▶ ┌────────┐
//!                     │ broker │            │ worker │ (process/thread,
//!                     │        │ ◀─report── │        │  stdio / socket /
//!   journal ◀─append─ └────────┘            └────────┘  pipe transport)
//! ```
//!
//! * [`SweepSpec`] names a job (scale, seeds, workload and strategy
//!   names, plan) — both sides rebuild identical state from it.
//! * [`wire`] frames messages like journal entries
//!   (`len`/`kind`/`checksum`/`payload`), so transport damage is a
//!   typed error with the same recovery story as on-disk torn tails.
//! * [`Broker`] leases cells (or region *spans* where a strategy
//!   decomposes — see
//!   [`SamplingStrategy::run_unit_span`](delorean_sampling::SamplingStrategy::run_unit_span)),
//!   journals completions via [`delorean_trace::journal`], re-leases
//!   on worker death or deadline expiry, and resumes from a journal
//!   after its own restart.
//! * [`worker_loop`] executes leases statelessly; injected faults are
//!   resolved **purely** per `(cell, attempt)` so the quarantined set
//!   is identical for any worker count or scheduling.
//!
//! The determinism contract is the workspace's: scheduling — including
//! distribution — is never semantics. `tests/shard_determinism.rs`
//! pins shard matrices against the in-process executor bit for bit
//! across worker counts, kills, and broker restarts.

#![warn(missing_docs)]

pub mod codec;
pub mod spec;
pub mod wire;

mod broker;
mod worker;

pub use broker::{Broker, BrokerConfig, JobRequest, JobTicket, ShardRun};
pub use spec::{build_strategy, strategy_decomposes, SweepSpec, STRATEGY_NAMES};
pub use worker::{worker_loop, WorkerOptions, WorkerSummary};

use std::fmt;

/// What went wrong running a shard job.
#[derive(Debug)]
pub enum ShardError {
    /// The wire transport failed.
    Wire(wire::WireError),
    /// The job's journal could not be created or resumed.
    Journal(delorean_trace::JournalError),
    /// The sweep spec is malformed or names unknown components.
    Spec(String),
    /// The broker shut down before the job finished.
    BrokerClosed,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Wire(e) => write!(f, "wire error: {e}"),
            ShardError::Journal(e) => write!(f, "journal error: {e}"),
            ShardError::Spec(detail) => write!(f, "bad sweep spec: {detail}"),
            ShardError::BrokerClosed => write!(f, "broker closed before the job finished"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Wire(e) => Some(e),
            ShardError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for ShardError {
    fn from(e: wire::WireError) -> Self {
        ShardError::Wire(e)
    }
}

impl From<delorean_trace::JournalError> for ShardError {
    fn from(e: delorean_trace::JournalError) -> Self {
        ShardError::Journal(e)
    }
}
