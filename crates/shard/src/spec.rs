//! Serializable sweep specification: which matrix a job runs.
//!
//! A [`SweepSpec`] names everything a worker needs to rebuild the exact
//! strategy×workload matrix the broker is sweeping — scale preset,
//! suite seed, workload names, strategy names, region count, optional
//! LLC override — because strategies and workloads are themselves pure
//! functions of these inputs. Shipping names instead of state is what
//! keeps the wire protocol small and every process bitwise agreed: both
//! sides construct from the same constructors the in-process
//! [`BatchExecutor`](delorean_bench::BatchExecutor) uses.

use crate::codec::{push_str, push_u32, push_u64, push_u8, Take};
use crate::ShardError;
use delorean_bench::journal::sweep_tag_names;
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, RegionPlan, SamplingConfig,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{spec_workload, PhasedWorkload, Scale};

/// Spec encoding version.
const SPEC_VERSION: u32 = 1;

/// The five strategy names [`build_strategy`] understands, in the
/// canonical comparison order.
pub const STRATEGY_NAMES: [&str; 5] = ["smarts", "coolsim", "mrrl", "checkpoint", "delorean"];

/// Whether a strategy's cells decompose into independent region units
/// (see [`SamplingStrategy::run_unit_span`]): the broker may lease
/// such cells as region *spans* and fold the returned units itself.
///
/// This mirrors which runners override `run_unit_span` — the worker
/// still consults the trait (the authority); a disagreement surfaces as
/// a failed lease, not a wrong result.
pub fn strategy_decomposes(name: &str) -> bool {
    matches!(name, "coolsim" | "mrrl")
}

/// Build one strategy by canonical name.
pub fn build_strategy(
    name: &str,
    scale: Scale,
    machine: MachineConfig,
) -> Result<Box<dyn SamplingStrategy>, ShardError> {
    match name {
        "smarts" => Ok(Box::new(SmartsRunner::new(machine))),
        "coolsim" => Ok(Box::new(CoolSimRunner::new(
            machine,
            CoolSimConfig::for_scale(scale),
        ))),
        "mrrl" => Ok(Box::new(MrrlRunner::new(machine))),
        "checkpoint" => Ok(Box::new(CheckpointWarmingRunner::new(machine))),
        "delorean" => Ok(Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        ))),
        other => Err(ShardError::Spec(format!("unknown strategy {other:?}"))),
    }
}

/// One job's sweep configuration, serializable for the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Experiment scale preset (encoded by label; divisors verified).
    pub scale: Scale,
    /// Suite seed for [`spec_workload`] phase generation.
    pub suite_seed: u64,
    /// Workload names, matrix row order.
    pub workloads: Vec<String>,
    /// Strategy names, matrix column order.
    pub strategies: Vec<String>,
    /// Detailed-region count of the sampling plan.
    pub regions: u32,
    /// Optional LLC size override (paper-scale bytes).
    pub llc_paper_bytes: Option<u64>,
    /// `Some(k)`: lease decomposable strategies' cells as region spans
    /// of at most `k` regions instead of whole cells.
    pub split_regions: Option<u32>,
}

impl SweepSpec {
    /// A spec with no workloads or strategies yet.
    pub fn new(scale: Scale, regions: u32) -> SweepSpec {
        SweepSpec {
            scale,
            suite_seed: 1,
            workloads: Vec::new(),
            strategies: Vec::new(),
            regions,
            llc_paper_bytes: None,
            split_regions: None,
        }
    }

    /// Set the workload list.
    pub fn with_workloads(mut self, names: &[&str]) -> SweepSpec {
        self.workloads = names.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Set the strategy list.
    pub fn with_strategies(mut self, names: &[&str]) -> SweepSpec {
        self.strategies = names.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Set the suite seed.
    pub fn with_suite_seed(mut self, seed: u64) -> SweepSpec {
        self.suite_seed = seed;
        self
    }

    /// Override the LLC size (paper-scale bytes).
    pub fn with_llc_paper_bytes(mut self, bytes: u64) -> SweepSpec {
        self.llc_paper_bytes = Some(bytes);
        self
    }

    /// Lease decomposable cells as spans of at most `k` regions.
    pub fn with_split_regions(mut self, k: u32) -> SweepSpec {
        self.split_regions = Some(k.max(1));
        self
    }

    /// Cells in the matrix (`workloads × strategies`).
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.strategies.len()
    }

    /// Strategy name of a flat cell (`cell = w * strategies + s`).
    pub fn strategy_name(&self, cell: u32) -> &str {
        &self.strategies[cell as usize % self.strategies.len()]
    }

    /// Workload name of a flat cell.
    pub fn workload_name(&self, cell: u32) -> &str {
        &self.workloads[cell as usize / self.strategies.len()]
    }

    /// The sampling plan this spec describes.
    pub fn plan(&self) -> RegionPlan {
        SamplingConfig::for_scale(self.scale)
            .with_regions(self.regions)
            .plan()
    }

    /// The machine configuration this spec describes.
    pub fn machine(&self) -> MachineConfig {
        let machine = MachineConfig::for_scale(self.scale);
        match self.llc_paper_bytes {
            Some(bytes) => machine.with_llc_paper_bytes(self.scale, bytes),
            None => machine,
        }
    }

    /// The journal tag binding this spec's sweeps — identical to the
    /// in-process executor's
    /// ([`sweep_tag`](delorean_bench::journal::sweep_tag)), so shard
    /// and in-process journals resume each other.
    pub fn tag(&self, plan: &RegionPlan) -> u64 {
        let strategies: Vec<&str> = self.strategies.iter().map(String::as_str).collect();
        let workloads: Vec<&str> = self.workloads.iter().map(String::as_str).collect();
        sweep_tag_names(&strategies, &workloads, plan)
    }

    /// Instantiate the strategy list.
    pub fn build_strategies(&self) -> Result<Vec<Box<dyn SamplingStrategy>>, ShardError> {
        let machine = self.machine();
        self.strategies
            .iter()
            .map(|name| build_strategy(name, self.scale, machine))
            .collect()
    }

    /// Instantiate the workload list.
    pub fn build_workloads(&self) -> Result<Vec<PhasedWorkload>, ShardError> {
        self.workloads
            .iter()
            .map(|name| {
                spec_workload(name, self.scale, self.suite_seed)
                    .ok_or_else(|| ShardError::Spec(format!("unknown workload {name:?}")))
            })
            .collect()
    }

    /// Check the spec is well-formed and every name resolves.
    pub fn validate(&self) -> Result<(), ShardError> {
        if self.workloads.is_empty() || self.strategies.is_empty() {
            return Err(ShardError::Spec(
                "spec needs at least one workload and one strategy".to_string(),
            ));
        }
        if self.regions == 0 {
            return Err(ShardError::Spec(
                "spec needs at least one region".to_string(),
            ));
        }
        self.build_strategies()?;
        self.build_workloads()?;
        Ok(())
    }

    /// Serialize for a [`Message::Job`](crate::wire::Message::Job).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u32(&mut out, SPEC_VERSION);
        push_str(&mut out, self.scale.label);
        push_u64(&mut out, self.scale.instr_div);
        push_u64(&mut out, self.scale.size_div);
        push_u64(&mut out, self.suite_seed);
        push_u32(&mut out, self.workloads.len() as u32);
        for w in &self.workloads {
            push_str(&mut out, w);
        }
        push_u32(&mut out, self.strategies.len() as u32);
        for s in &self.strategies {
            push_str(&mut out, s);
        }
        push_u32(&mut out, self.regions);
        match self.llc_paper_bytes {
            Some(b) => {
                push_u8(&mut out, 1);
                push_u64(&mut out, b);
            }
            None => push_u8(&mut out, 0),
        }
        match self.split_regions {
            Some(k) => {
                push_u8(&mut out, 1);
                push_u32(&mut out, k);
            }
            None => push_u8(&mut out, 0),
        }
        out
    }

    /// Deserialize. Scale presets are matched by label and their
    /// divisors verified — a spec from a build with different scaling
    /// constants is rejected instead of silently diverging.
    pub fn decode(bytes: &[u8]) -> Result<SweepSpec, ShardError> {
        let corrupt = || ShardError::Spec("spec payload is malformed".to_string());
        let mut r = Take { bytes, at: 0 };
        let version = r.u32().ok_or_else(corrupt)?;
        if version != SPEC_VERSION {
            return Err(ShardError::Spec(format!(
                "unsupported spec version {version}"
            )));
        }
        let label = r.string().ok_or_else(corrupt)?;
        let instr_div = r.u64().ok_or_else(corrupt)?;
        let size_div = r.u64().ok_or_else(corrupt)?;
        let scale = match label.as_str() {
            "paper" => Scale::paper(),
            "demo" => Scale::demo(),
            "tiny" => Scale::tiny(),
            other => {
                return Err(ShardError::Spec(format!("unknown scale preset {other:?}")));
            }
        };
        if scale.instr_div != instr_div || scale.size_div != size_div {
            return Err(ShardError::Spec(format!(
                "scale {label:?} divisors disagree: peer has {instr_div}/{size_div}, \
                 this build has {}/{}",
                scale.instr_div, scale.size_div
            )));
        }
        let suite_seed = r.u64().ok_or_else(corrupt)?;
        let n_workloads = r.u32().ok_or_else(corrupt)? as usize;
        let mut workloads = Vec::with_capacity(n_workloads.min(4096));
        for _ in 0..n_workloads {
            workloads.push(r.string().ok_or_else(corrupt)?);
        }
        let n_strategies = r.u32().ok_or_else(corrupt)? as usize;
        let mut strategies = Vec::with_capacity(n_strategies.min(4096));
        for _ in 0..n_strategies {
            strategies.push(r.string().ok_or_else(corrupt)?);
        }
        let regions = r.u32().ok_or_else(corrupt)?;
        let llc_paper_bytes = match r.u8().ok_or_else(corrupt)? {
            0 => None,
            _ => Some(r.u64().ok_or_else(corrupt)?),
        };
        let split_regions = match r.u8().ok_or_else(corrupt)? {
            0 => None,
            _ => Some(r.u32().ok_or_else(corrupt)?),
        };
        if !r.done() {
            return Err(corrupt());
        }
        Ok(SweepSpec {
            scale,
            suite_seed,
            workloads,
            strategies,
            regions,
            llc_paper_bytes,
            split_regions,
        })
    }
}
