//! The shard worker: executes leased cells over any wire transport.
//!
//! [`worker_loop`] is transport-agnostic — the bin runs it over child
//! stdio or a Unix socket, tests over in-process pipes. A worker holds
//! **no scheduling state**: it rebuilds each announced job's strategies
//! and workloads from the [`SweepSpec`](crate::SweepSpec) (pure
//! functions of the spec), executes one lease at a time, and streams
//! the result back. Every lease body runs inside
//! [`run_unit_guarded`](delorean_trace::fault::run_unit_guarded) with a
//! **zero local retry budget**: retry policy belongs to the broker,
//! which re-leases with an incremented `attempt` — that attempt number
//! is also what makes injected faults deterministic *across* processes
//! (see below).
//!
//! # Deterministic fault injection without shared counters
//!
//! The in-process harness's [`fault::hit`](delorean_trace::fault::hit)
//! keeps process-global occurrence counters, which cannot agree between
//! worker processes. The worker therefore never consults the global
//! registry; an injected [`FaultPlan`] is evaluated **purely** via
//! [`FaultPlan::fault_for`] with the broker-issued attempt number as
//! the occurrence. Identical `(cell, attempt)` → identical fault
//! decision on any worker, any scheduling — which is what pins the
//! deterministic-quarantine tests.

use crate::codec::encode_units;
use crate::wire::{self, Message, WireError, WireFault, WIRE_VERSION};
use crate::SweepSpec;
use delorean_bench::journal::encode_cell;
use delorean_sampling::{RegionPlan, SamplingStrategy};
use delorean_trace::fault::{
    self, FaultPlan, FaultPolicy, FaultSite, InjectedFault, InjectedPanic, InjectedTimeout,
};
use delorean_trace::{PhasedWorkload, TileError};
use std::io::{Read, Write};

/// How a [`worker_loop`] behaves.
#[derive(Copy, Clone, Debug, Default)]
pub struct WorkerOptions {
    /// Region-scheduler worker count override per cell (`None` runs
    /// each strategy with its own configuration, like the in-process
    /// executor's default path). Pure scheduling — never changes
    /// result bytes.
    pub region_workers: Option<usize>,
    /// Injected-fault plan, consulted **purely** per `(cell, attempt)`
    /// at [`FaultSite::UnitEntry`]. `None` outside fault harnesses.
    pub fault: Option<FaultPlan>,
    /// Die silently (drop the connection without replying) when the
    /// `n+1`-th lease arrives — the kill-a-worker harness knob.
    pub abandon_after: Option<u64>,
}

/// What a worker did before its loop ended.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases answered (done or failed).
    pub leases_served: u64,
    /// Leases answered with a failure.
    pub failures: u64,
    /// `true` if the worker abandoned mid-lease
    /// ([`WorkerOptions::abandon_after`]).
    pub abandoned: bool,
}

/// One announced job, rebuilt from its spec (or the reason it could
/// not be).
enum JobSlot {
    Ready(Box<JobContext>),
    Broken(String),
}

struct JobContext {
    spec: SweepSpec,
    plan: RegionPlan,
    strategies: Vec<Box<dyn SamplingStrategy>>,
    workloads: Vec<PhasedWorkload>,
}

/// Serve leases until the broker hangs up or sends `Shutdown`.
///
/// Returns the summary on a clean exit; transport-level damage
/// (truncated or corrupt frames, I/O errors) is the typed [`WireError`]
/// — the worker process turns that into a nonzero exit so the broker's
/// EOF detection re-leases its in-flight cell.
pub fn worker_loop<R: Read, W: Write>(
    mut read: R,
    mut write: W,
    opts: &WorkerOptions,
) -> Result<WorkerSummary, WireError> {
    wire::send(
        &mut write,
        &Message::Hello {
            version: WIRE_VERSION,
        },
    )?;
    let mut jobs: Vec<(u32, JobSlot)> = Vec::new();
    let mut summary = WorkerSummary::default();
    loop {
        let msg = match wire::recv(&mut read)? {
            None | Some(Message::Shutdown) => return Ok(summary),
            Some(m) => m,
        };
        match msg {
            Message::Job { job, spec } => {
                let slot = match SweepSpec::decode(&spec).and_then(build_job) {
                    Ok(ctx) => JobSlot::Ready(ctx),
                    Err(e) => JobSlot::Broken(e.to_string()),
                };
                jobs.retain(|(id, _)| *id != job);
                jobs.push((job, slot));
            }
            Message::Lease {
                job,
                cell,
                attempt,
                span,
            } => {
                if let Some(limit) = opts.abandon_after {
                    if summary.leases_served >= limit {
                        summary.abandoned = true;
                        return Ok(summary);
                    }
                }
                let reply = match jobs.iter().find(|(id, _)| *id == job) {
                    Some((_, JobSlot::Ready(ctx))) => execute(ctx, job, cell, attempt, span, opts),
                    Some((_, JobSlot::Broken(reason))) => {
                        refusal(job, cell, attempt, format!("job spec rejected: {reason}"))
                    }
                    None => refusal(job, cell, attempt, format!("unknown job {job}")),
                };
                summary.leases_served += 1;
                if matches!(reply, Message::CellFailed { .. }) {
                    summary.failures += 1;
                }
                wire::send(&mut write, &reply)?;
            }
            // Peer-role messages are ignored, not errors: the protocol
            // stays usable under harnesses that echo traffic.
            Message::Hello { .. }
            | Message::CellDone { .. }
            | Message::SpanDone { .. }
            | Message::CellFailed { .. }
            | Message::Shutdown => {}
        }
    }
}

fn build_job(spec: SweepSpec) -> Result<Box<JobContext>, crate::ShardError> {
    let plan = spec.plan();
    let strategies = spec.build_strategies()?;
    let workloads = spec.build_workloads()?;
    Ok(Box::new(JobContext {
        spec,
        plan,
        strategies,
        workloads,
    }))
}

fn refusal(job: u32, cell: u32, attempt: u32, detail: String) -> Message {
    Message::CellFailed {
        job,
        cell,
        attempt,
        fault: WireFault {
            kind: 0,
            aux: 0,
            detail,
        },
    }
}

/// Execute one lease. The body is guarded with a zero retry budget —
/// the broker owns retries — and classified failures travel back as
/// typed wire faults.
fn execute(
    ctx: &JobContext,
    job: u32,
    cell: u32,
    attempt: u32,
    span: Option<(u32, u32)>,
    opts: &WorkerOptions,
) -> Message {
    let n_strategies = ctx.strategies.len();
    let s = cell as usize % n_strategies;
    let w = cell as usize / n_strategies;
    let (Some(strategy), Some(workload)) = (ctx.strategies.get(s), ctx.workloads.get(w)) else {
        return refusal(
            job,
            cell,
            attempt,
            format!(
                "cell {cell} is outside the {} cell matrix",
                ctx.spec.n_cells()
            ),
        );
    };
    let one_shot = FaultPolicy { retry_budget: 0 };
    let injected = opts
        .fault
        .and_then(|plan| plan.fault_for(FaultSite::UnitEntry, u64::from(cell), attempt));
    match span {
        None => {
            let outcome = fault::run_unit_guarded(cell, &one_shot, || {
                raise(injected, cell, attempt);
                match opts.region_workers {
                    Some(n) => strategy.run_with_workers(workload, &ctx.plan, n),
                    None => strategy.run(workload, &ctx.plan),
                }
                .into_report()
            });
            match outcome {
                Ok(report) => Message::CellDone {
                    job,
                    cell,
                    attempt,
                    report: encode_cell(cell, &report),
                },
                Err(failure) => Message::CellFailed {
                    job,
                    cell,
                    attempt,
                    fault: WireFault::from_unit_fault(&failure.fault),
                },
            }
        }
        Some((lo, hi)) => {
            let outcome = fault::run_unit_guarded(cell, &one_shot, || {
                raise(injected, cell, attempt);
                strategy.run_unit_span(workload, &ctx.plan, lo..hi)
            });
            match outcome {
                Ok(Some(units)) => Message::SpanDone {
                    job,
                    cell,
                    attempt,
                    lo,
                    hi,
                    units: encode_units(&units),
                },
                Ok(None) => refusal(
                    job,
                    cell,
                    attempt,
                    format!(
                        "strategy {:?} does not decompose into region units",
                        strategy.name()
                    ),
                ),
                Err(failure) => Message::CellFailed {
                    job,
                    cell,
                    attempt,
                    fault: WireFault::from_unit_fault(&failure.fault),
                },
            }
        }
    }
}

/// Raise a purely-resolved injected fault exactly the way the global
/// harness's [`fault::hit`] would, so the classifier sees identical
/// payloads whichever process the fault fires in.
fn raise(injected: Option<InjectedFault>, cell: u32, attempt: u32) {
    match injected {
        None => {}
        Some(InjectedFault::Delay { spins }) => {
            for _ in 0..spins {
                std::thread::yield_now();
            }
        }
        Some(InjectedFault::Panic) => std::panic::panic_any(InjectedPanic(format!(
            "injected panic at shard cell {cell} attempt {attempt}"
        ))),
        Some(InjectedFault::TraceError) => std::panic::panic_any(TileError::TileCorrupt {
            tile: cell,
            detail: format!("injected trace error at shard cell {cell} attempt {attempt}"),
        }),
        Some(InjectedFault::Timeout) => std::panic::panic_any(InjectedTimeout),
    }
}
