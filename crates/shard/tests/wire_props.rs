//! Wire-protocol properties: every message kind round-trips bit for
//! bit; transport damage (flipped bits, truncation) is a typed
//! [`WireError`], never a panic; duplicate deliveries dedup broker-side
//! to one identical report.

use delorean_shard::wire::{self, Message, WireError, WireFault, FRAME_HEADER_BYTES};
use delorean_shard::{Broker, BrokerConfig, SweepSpec};
use delorean_trace::Scale;
use std::io::Write;

fn sample_messages() -> Vec<Message> {
    vec![
        Message::Hello { version: 1 },
        Message::Job {
            job: 3,
            spec: SweepSpec::new(Scale::tiny(), 3)
                .with_workloads(&["hmmer"])
                .with_strategies(&["smarts", "delorean"])
                .encode(),
        },
        Message::Lease {
            job: 3,
            cell: 7,
            attempt: 2,
            span: None,
        },
        Message::Lease {
            job: 3,
            cell: 7,
            attempt: 0,
            span: Some((1, 3)),
        },
        Message::CellDone {
            job: 3,
            cell: 7,
            attempt: 1,
            report: vec![1, 2, 3, 4, 5],
        },
        Message::SpanDone {
            job: 3,
            cell: 7,
            attempt: 0,
            lo: 1,
            hi: 3,
            units: vec![9, 8, 7],
        },
        Message::CellFailed {
            job: 3,
            cell: 7,
            attempt: 2,
            fault: WireFault {
                kind: 1,
                aux: 0,
                detail: "tile 7 corrupt".to_string(),
            },
        },
        Message::Shutdown,
    ]
}

fn encode(msg: &Message) -> Vec<u8> {
    let mut bytes = Vec::new();
    wire::send(&mut bytes, msg).expect("send to Vec");
    bytes
}

#[test]
fn every_message_kind_round_trips() {
    for msg in sample_messages() {
        let bytes = encode(&msg);
        let back = wire::recv(&mut bytes.as_slice())
            .expect("recv")
            .expect("one frame");
        assert_eq!(back, msg);
    }
}

#[test]
fn back_to_back_frames_stream_cleanly() {
    let messages = sample_messages();
    let mut bytes = Vec::new();
    for msg in &messages {
        wire::send(&mut bytes, msg).expect("send");
    }
    let mut read = bytes.as_slice();
    for msg in &messages {
        assert_eq!(wire::recv(&mut read).expect("recv").as_ref(), Some(msg));
    }
    assert!(wire::recv(&mut read).expect("clean EOF").is_none());
}

#[test]
fn every_single_bit_flip_is_a_typed_error_or_a_different_message() {
    for msg in sample_messages() {
        let bytes = encode(&msg);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                // Must never panic. Flips in the kind field (header
                // bytes 4..8) may still decode — as a *different*
                // message; any other flip breaks length or checksum
                // integrity and must be a typed error.
                match wire::recv(&mut damaged.as_slice()) {
                    Ok(decoded) => {
                        assert!(
                            (4..8).contains(&byte),
                            "flip at byte {byte} bit {bit} of {msg:?} was silently accepted"
                        );
                        assert_ne!(
                            decoded.as_ref(),
                            Some(&msg),
                            "kind flip at byte {byte} decoded back to the original"
                        );
                    }
                    Err(
                        WireError::ChecksumMismatch { .. }
                        | WireError::Truncated { .. }
                        | WireError::Oversize { .. }
                        | WireError::UnknownKind { .. }
                        | WireError::Malformed { .. },
                    ) => {}
                    Err(other) => {
                        panic!("flip at byte {byte} bit {bit}: unexpected error class {other:?}")
                    }
                }
            }
        }
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    for msg in sample_messages() {
        let bytes = encode(&msg);
        // Zero bytes is a clean EOF (no frame started) …
        assert!(wire::recv(&mut &bytes[..0])
            .expect("empty stream")
            .is_none());
        // … every other prefix is a torn frame.
        for cut in 1..bytes.len() {
            match wire::recv(&mut &bytes[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    assert!(got < needed, "cut at {cut}: got {got} needed {needed}")
                }
                other => panic!("cut at {cut} of {msg:?}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn oversize_frames_are_rejected_without_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    assert_eq!(bytes.len(), FRAME_HEADER_BYTES);
    match wire::recv(&mut bytes.as_slice()) {
        Err(WireError::Oversize { len }) => assert_eq!(len, u32::MAX),
        other => panic!("expected Oversize, got {other:?}"),
    }
}

/// A scripted worker that answers every lease **twice** — the broker
/// must dedup on the cell slot and produce one identical report.
#[test]
fn duplicate_deliveries_dedup_to_one_identical_report() {
    let spec = SweepSpec::new(Scale::tiny(), 3)
        .with_suite_seed(7)
        .with_workloads(&["hmmer"])
        .with_strategies(&["smarts", "delorean"]);
    let plan = spec.plan();
    let strategies = spec.build_strategies().expect("strategies");
    let workloads = spec.build_workloads().expect("workloads");
    let reference = delorean_bench::BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);

    let broker = Broker::new(BrokerConfig::default());
    let (worker_read, broker_write) = std::io::pipe().expect("pipe");
    let (broker_read, worker_write) = std::io::pipe().expect("pipe");
    broker.attach(broker_read, broker_write);
    let echoer = std::thread::spawn(move || duplicate_everything(worker_read, worker_write));

    let run = broker.run_matrix(spec.clone()).expect("shard run");
    broker.shutdown();
    echoer.join().expect("worker thread");

    assert!(run.run.quarantined.is_empty());
    assert_eq!(run.run.executed_cells, spec.n_cells());
    for (row, ref_row) in run.run.matrix.iter().zip(&reference) {
        for (cell, ref_cell) in row.iter().zip(ref_row) {
            assert_eq!(cell.as_ref().expect("cell").report, ref_cell.report);
        }
    }
}

fn duplicate_everything(mut read: impl std::io::Read, mut write: impl Write) {
    use delorean_bench::journal::encode_cell;
    wire::send(&mut write, &Message::Hello { version: 1 }).expect("hello");
    let mut job_ctx = None;
    loop {
        let msg = match wire::recv(&mut read) {
            Ok(Some(m)) => m,
            Ok(None) | Err(_) => return,
        };
        match msg {
            Message::Shutdown => return,
            Message::Job { spec, .. } => {
                let spec = SweepSpec::decode(&spec).expect("spec");
                let strategies = spec.build_strategies().expect("strategies");
                let workloads = spec.build_workloads().expect("workloads");
                let plan = spec.plan();
                job_ctx = Some((spec, plan, strategies, workloads));
            }
            Message::Lease {
                job,
                cell,
                attempt,
                span: _,
            } => {
                let (spec, plan, strategies, workloads) =
                    job_ctx.as_ref().expect("job announced before lease");
                let s = cell as usize % spec.strategies.len();
                let w = cell as usize / spec.strategies.len();
                let report = strategies[s].run(&workloads[w], plan).into_report();
                let done = Message::CellDone {
                    job,
                    cell,
                    attempt,
                    report: encode_cell(cell, &report),
                };
                // Deliver twice: the duplicate must be deduped.
                wire::send(&mut write, &done).expect("send");
                wire::send(&mut write, &done).expect("send duplicate");
            }
            _ => {}
        }
    }
}
