//! Real-process end-to-end checks: the broker driving actual
//! `shard-worker` binaries over child stdio and Unix sockets, with
//! kills, deterministic cross-process quarantine, and journal interop
//! with the in-process executor in both directions.

use delorean_bench::BatchExecutor;
use delorean_sampling::{FaultPolicy, StrategyReport};
use delorean_shard::{Broker, BrokerConfig, JobRequest, ShardRun, SweepSpec};
use delorean_trace::fault::{FaultKind, FaultPlan, FaultSite};
use delorean_trace::Scale;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn base_spec() -> SweepSpec {
    SweepSpec::new(Scale::tiny(), 3)
        .with_suite_seed(5)
        .with_workloads(&["hmmer", "mcf"])
        .with_strategies(&["smarts", "coolsim", "delorean"])
}

fn reference(spec: &SweepSpec) -> Vec<Vec<StrategyReport>> {
    let plan = spec.plan();
    let strategies = spec.build_strategies().expect("strategies");
    let workloads = spec.build_workloads().expect("workloads");
    BatchExecutor::with_threads(2).run_matrix(&strategies, &workloads, &plan)
}

fn spawn_stdio_worker(broker: &Broker, extra_args: &[String]) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_shard-worker"))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard-worker");
    let stdout = child.stdout.take().expect("worker stdout");
    let stdin = child.stdin.take().expect("worker stdin");
    broker.attach(stdout, stdin);
    child
}

fn reap(mut children: Vec<Child>) {
    for child in &mut children {
        child.wait().expect("worker exit");
    }
}

fn assert_matrix_eq(label: &str, run: &ShardRun, reference: &[Vec<StrategyReport>]) {
    assert!(
        run.run.quarantined.is_empty(),
        "{label}: unexpected quarantine"
    );
    for (w, (row, ref_row)) in run.run.matrix.iter().zip(reference).enumerate() {
        for (s, (cell, ref_cell)) in row.iter().zip(ref_row).enumerate() {
            let report = cell
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: cell w{w}/s{s} missing"));
            assert_eq!(report.report, ref_cell.report, "{label}: cell w{w}/s{s}");
        }
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("delorean-shard-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn stdio_workers_with_a_kill_match_the_reference() {
    let spec = base_spec();
    let expected = reference(&spec);
    let broker = Broker::new(BrokerConfig::default());
    let children = vec![
        spawn_stdio_worker(&broker, &["--abandon-after".to_string(), "1".to_string()]),
        spawn_stdio_worker(&broker, &[]),
    ];
    let run = broker.run_matrix(spec).expect("shard run");
    broker.shutdown();
    reap(children);
    assert_matrix_eq("stdio-kill", &run, &expected);
    assert!(
        run.lease_losses >= 1,
        "the killed worker's lease must be lost"
    );
}

#[test]
fn unix_socket_workers_match_the_reference() {
    let spec = base_spec();
    let expected = reference(&spec);
    let socket = temp_path("sock");
    let listener = UnixListener::bind(&socket).expect("bind socket");
    let socket_arg = socket.to_str().expect("utf8 socket path").to_string();

    let broker = Broker::new(BrokerConfig::default());
    let mut children = Vec::new();
    for _ in 0..2 {
        children.push(
            Command::new(env!("CARGO_BIN_EXE_shard-worker"))
                .args(["--socket", &socket_arg])
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn socket worker"),
        );
        let (stream, _) = listener.accept().expect("accept worker");
        let write = stream.try_clone().expect("clone socket");
        broker.attach(stream, write);
    }
    let run = broker.run_matrix(spec).expect("shard run");
    broker.shutdown();
    reap(children);
    let _ = std::fs::remove_file(&socket);
    assert_matrix_eq("unix-socket", &run, &expected);
}

#[test]
fn quarantine_is_identical_across_process_worker_counts() {
    let spec = base_spec();
    let policy = FaultPolicy::default();
    let n_cells = spec.n_cells() as u64;
    // Pure prediction: pick a seed arming a strict subset of cells.
    let (seed, predicted) = (1u64..64)
        .find_map(|seed| {
            let plan = FaultPlan::new(seed)
                .at(FaultSite::UnitEntry)
                .every(2)
                .strikes(policy.max_attempts())
                .kinds(&[FaultKind::Panic]);
            let armed: Vec<u32> = (0..n_cells)
                .filter(|&cell| plan.fault_for(FaultSite::UnitEntry, cell, 0).is_some())
                .map(|cell| cell as u32)
                .collect();
            (!armed.is_empty() && armed.len() < n_cells as usize).then_some((seed, armed))
        })
        .expect("a seed arming a strict subset of cells");
    let fault_args: Vec<String> = [
        "--fault-seed",
        &seed.to_string(),
        "--fault-every",
        "2",
        "--fault-strikes",
        &policy.max_attempts().to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let expected_set: Vec<(u32, u32)> = predicted
        .iter()
        .map(|&cell| (cell, policy.max_attempts()))
        .collect();
    for n in [1usize, 2, 4] {
        let broker = Broker::new(BrokerConfig::default());
        let children: Vec<Child> = (0..n)
            .map(|_| spawn_stdio_worker(&broker, &fault_args))
            .collect();
        let run = broker.run_matrix(spec.clone()).expect("shard run");
        broker.shutdown();
        reap(children);
        let quarantined: Vec<(u32, u32)> = run
            .run
            .quarantined
            .iter()
            .map(|f| (f.unit, f.attempts))
            .collect();
        assert_eq!(
            quarantined, expected_set,
            "{n} process worker(s): quarantine must be scheduling-independent"
        );
    }
}

#[test]
fn shard_journal_resumes_in_process_and_back() {
    let spec = base_spec();
    let expected = reference(&spec);
    let plan = spec.plan();
    let strategies = spec.build_strategies().expect("strategies");
    let workloads = spec.build_workloads().expect("workloads");
    let policy = FaultPolicy::default();

    // Direction 1: a halted shard run's journal is finished by the
    // in-process executor.
    let journal = temp_path("interop1.dlj");
    let broker = Broker::new(BrokerConfig::default());
    let children = vec![spawn_stdio_worker(&broker, &[])];
    let halted = broker
        .submit(
            JobRequest::new(spec.clone())
                .with_journal(journal.clone())
                .with_cell_budget(2),
        )
        .wait()
        .expect("halted shard run");
    broker.shutdown();
    reap(children);
    assert!(halted.run.executed_cells >= 2);
    let finished = BatchExecutor::new()
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &journal)
        .expect("in-process resume");
    assert!(finished.quarantined.is_empty());
    assert!(
        finished.resumed_cells >= 2,
        "in-process executor must restore the shard journal's prefix"
    );
    for (row, ref_row) in finished.matrix.iter().zip(&expected) {
        for (cell, ref_cell) in row.iter().zip(ref_row) {
            assert_eq!(cell.as_ref().expect("cell").report, ref_cell.report);
        }
    }
    let _ = std::fs::remove_file(&journal);

    // Direction 2: a complete in-process journal is resumed by the
    // shard broker without executing anything.
    let journal = temp_path("interop2.dlj");
    let complete = BatchExecutor::new()
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &journal)
        .expect("in-process journaled run");
    assert!(complete.quarantined.is_empty());
    let broker = Broker::new(BrokerConfig::default());
    let replay = broker
        .submit(JobRequest::new(spec.clone()).with_journal(journal.clone()))
        .wait()
        .expect("shard replay");
    broker.shutdown();
    assert_matrix_eq("journal-interop", &replay, &expected);
    assert_eq!(replay.run.resumed_cells, spec.n_cells());
    assert_eq!(replay.run.executed_cells, 0);
    let _ = std::fs::remove_file(&journal);
}
